// Benchmarks regenerating each of the paper's tables and figures, plus
// ablations of the design choices called out in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
package recsim

import (
	"testing"

	"repro/internal/benchreport"
	"repro/internal/core"
	"repro/internal/embedding"
	"repro/internal/experiments"
	"repro/internal/hw"
	"repro/internal/hybrid"
	"repro/internal/ingest"
	"repro/internal/perfmodel"
	"repro/internal/placement"
	"repro/internal/telemetry"
	"repro/internal/tensor"
	"repro/internal/trace"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// benchExperiment runs one paper artifact per iteration (quick mode for
// the heavy real-training/fleet studies).
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, experiments.Options{Quick: true, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if res.Output == "" {
			b.Fatal("empty output")
		}
	}
}

func BenchmarkFig1(b *testing.B)     { benchExperiment(b, "fig1") }
func BenchmarkFig2(b *testing.B)     { benchExperiment(b, "fig2") }
func BenchmarkFig5(b *testing.B)     { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)     { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)     { benchExperiment(b, "fig7") }
func BenchmarkFig9(b *testing.B)     { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)    { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)    { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)    { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)    { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)    { benchExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B)    { benchExperiment(b, "fig15") }
func BenchmarkTable1(b *testing.B)   { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B)   { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B)   { benchExperiment(b, "table3") }
func BenchmarkAutotune(b *testing.B) { benchExperiment(b, "vic") }

// ---- substrate micro-benchmarks and DESIGN.md ablations ----

// BenchmarkTrainStep measures one real training step of a mid-size model
// (the same config cmd/benchrun's train_step entry measures, so the
// committed BENCH reports stay comparable).
func BenchmarkTrainStep(b *testing.B) {
	cfg := benchreport.BenchStepConfig()
	m := NewModel(cfg, 1)
	tr := NewTrainer(m, TrainerConfig{LR: 0.05})
	gen := NewGenerator(cfg, 2)
	batch := gen.NextBatch(128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Step(batch)
	}
	b.ReportMetric(float64(128*b.N)/b.Elapsed().Seconds(), "examples/sec")
}

// BenchmarkTrainStepTraced is BenchmarkTrainStep with span tracing on:
// the delta against the untraced number is the telemetry overhead, whose
// acceptance bound is < 3% (cmd/benchrun records the same pair as the
// telemetry_overhead_single speedup).
func BenchmarkTrainStepTraced(b *testing.B) {
	cfg := benchreport.BenchStepConfig()
	m := NewModel(cfg, 1)
	tr := NewTrainer(m, TrainerConfig{LR: 0.05})
	tr.SetTrace(telemetry.NewTracer(1, 4096), 0)
	gen := NewGenerator(cfg, 2)
	batch := gen.NextBatch(128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Step(batch)
	}
	b.ReportMetric(float64(128*b.N)/b.Elapsed().Seconds(), "examples/sec")
}

// BenchmarkHybridStep measures one synchronous hybrid-parallel step on 2
// in-process ranks over the same model/batch as BenchmarkTrainStep, so
// the parallelization overhead (collectives + pack/unpack) is directly
// readable against the single-process step. cmd/benchrun's hybrid_step
// entry records the same setup.
func BenchmarkHybridStep(b *testing.B) {
	cfg := benchreport.BenchStepConfig()
	ht, err := hybrid.New(cfg, hybrid.Config{Ranks: 2, LR: 0.05, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer ht.Close()
	gen := NewGenerator(cfg, 2)
	batch := gen.NextBatch(128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ht.Step(batch)
	}
	b.ReportMetric(float64(128*b.N)/b.Elapsed().Seconds(), "examples/sec")
}

// BenchmarkHybridStepTraced is BenchmarkHybridStep with span tracing on
// across both rank shards (telemetry_overhead_hybrid in cmd/benchrun).
func BenchmarkHybridStepTraced(b *testing.B) {
	cfg := benchreport.BenchStepConfig()
	hc := hybrid.Config{Ranks: 2, LR: 0.05, Seed: 1}
	hc.Trace = telemetry.NewTracer(hc.ShardCount(), 4096)
	ht, err := hybrid.New(cfg, hc)
	if err != nil {
		b.Fatal(err)
	}
	defer ht.Close()
	gen := NewGenerator(cfg, 2)
	batch := gen.NextBatch(128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ht.Step(batch)
	}
	b.ReportMetric(float64(128*b.N)/b.Elapsed().Seconds(), "examples/sec")
}

// BenchmarkIngestStep measures the ingestion-fed training step: the
// staged on-disk reader pipeline (2 decoders, RecD dedup) feeding
// core.Trainer over the same model as BenchmarkTrainStep, so the cost of
// training from disk instead of a resident batch is directly readable.
// cmd/benchrun's ingest_step entry records the same setup.
func BenchmarkIngestStep(b *testing.B) {
	cfg := benchreport.BenchStepConfig()
	dir := b.TempDir()
	gen := NewGenerator(cfg, 9)
	if err := gen.WriteShards(dir, 4, 4*128); err != nil {
		b.Fatal(err)
	}
	ds, err := ingest.OpenDataset(dir)
	if err != nil {
		b.Fatal(err)
	}
	defer ds.Close()
	pipe, err := ingest.Open(ds, cfg, ingest.Options{
		BatchSize: 128, Readers: 2, Dedup: true, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer pipe.Close()
	tr := NewTrainer(NewModel(cfg, 1), TrainerConfig{LR: 0.05})
	b.ResetTimer()
	if _, _, err := tr.TrainFrom(pipe, b.N); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(128*b.N)/b.Elapsed().Seconds(), "examples/sec")
	b.ReportMetric(pipe.Meters().DedupRatio(), "dedup-ratio")
}

// BenchmarkPerfModelEstimate measures the analytic model's cost.
func BenchmarkPerfModelEstimate(b *testing.B) {
	cfg := workload.DefaultTestSuite(1024, 64)
	plan, err := placement.Fit(cfg, hw.BigBasin(), placement.GPUMemory, 0)
	if err != nil {
		b.Fatal(err)
	}
	s := perfmodel.Scenario{Cfg: cfg, Platform: hw.BigBasin(), Batch: 1600, Plan: plan}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := perfmodel.Estimate(s); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: blocked/parallel GEMM vs the naive kernel.
func BenchmarkAblationGEMMBlocked(b *testing.B) {
	rng := xrand.New(1)
	x, y, dst := randMat(rng, 256), randMat(rng, 256), tensor.New(256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(dst, x, y)
	}
}

func BenchmarkAblationGEMMNaive(b *testing.B) {
	rng := xrand.New(1)
	x, y, dst := randMat(rng, 256), randMat(rng, 256), tensor.New(256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < 256; r++ {
			for c := 0; c < 256; c++ {
				var s float32
				for k := 0; k < 256; k++ {
					s += x.At(r, k) * y.At(k, c)
				}
				dst.Set(r, c, s)
			}
		}
	}
}

func randMat(rng *xrand.RNG, n int) *tensor.Matrix {
	m := tensor.New(n, n)
	tensor.NormalInit(m, 1, rng)
	return m
}

// Ablation: fused matmul+bias+ReLU epilogue vs the three-pass sequence
// (see DESIGN.md "Fusion").
func BenchmarkAblationDenseLayerFused(b *testing.B) {
	rng := xrand.New(1)
	x, w, y := randMat(rng, 256), randMat(rng, 256), tensor.New(256, 256)
	bias := make([]float32, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulBiasReLU(y, x, w, bias, true)
	}
}

func BenchmarkAblationDenseLayerUnfused(b *testing.B) {
	rng := xrand.New(1)
	x, w, y := randMat(rng, 256), randMat(rng, 256), tensor.New(256, 256)
	bias := make([]float32, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchreport.UnfusedDenseLayer(y, x, w, bias)
	}
}

// Ablation: table-wise sharding balanced on bytes vs on lookups
// (§III-A2: access frequency does not correlate with size).
func BenchmarkAblationShardingBalance(b *testing.B) {
	cfg := workload.M3Prod()
	stats := make([]embedding.TableStat, cfg.NumSparse())
	for i, s := range cfg.TableStats() {
		stats[i] = embedding.TableStat{Index: s.Index, Bytes: s.Bytes, MeanPooled: s.MeanPooled}
	}
	b.ResetTimer()
	var byBytes, byLookups float64
	for i := 0; i < b.N; i++ {
		_, loadB := embedding.TableWiseGreedy(stats, 8, 0.0)
		_, loadL := embedding.TableWiseGreedy(stats, 8, 1.0)
		byBytes = embedding.MaxOverMean(loadB.Lookups)
		byLookups = embedding.MaxOverMean(loadL.Lookups)
	}
	b.ReportMetric(byBytes, "lookup-imbalance(bytes-balanced)")
	b.ReportMetric(byLookups, "lookup-imbalance(lookup-balanced)")
}

// Ablation: LRU caching opportunity on Zipf embedding traces (§III-A2).
func BenchmarkAblationLRUCacheHitRate(b *testing.B) {
	cfg := core.Config{
		Name:          "cache-bench",
		DenseFeatures: 8,
		Sparse:        core.UniformSparse(4, 100000, 8),
		EmbeddingDim:  16,
		BottomMLP:     []int{16},
		TopMLP:        []int{16},
		Interaction:   core.Concat,
	}
	gen := NewGenerator(cfg, 3)
	var batches []*core.MiniBatch
	for i := 0; i < 8; i++ {
		batches = append(batches, gen.NextBatch(128))
	}
	b.ResetTimer()
	var hit float64
	for i := 0; i < b.N; i++ {
		rates := trace.CacheOpportunity(batches, []int{4096})
		hit = rates[0]
	}
	b.ReportMetric(hit, "hit-rate@4096rows")
}

// Ablation: Hogwild flow overlap in the DES pipeline (serial vs 4 flows).
func BenchmarkAblationPipelineOverlap(b *testing.B) {
	run := func(flows int) float64 {
		res, err := pipelineRun(flows)
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	b.ResetTimer()
	var serial, overlapped float64
	for i := 0; i < b.N; i++ {
		serial = run(1)
		overlapped = run(4)
	}
	b.ReportMetric(serial, "thpt-serial")
	b.ReportMetric(overlapped, "thpt-overlap4")
}

package recsim

import (
	"testing"

	"repro/internal/benchreport"
	"repro/internal/collective"
	"repro/internal/data"
	"repro/internal/hybrid"
	"repro/internal/tensor"
)

// TestTrainStepZeroAlloc is the hot-path allocation budget: after warmup,
// one full training step (forward, interaction, backward, sparse scatter,
// dense + sparse optimizer updates) must not touch the heap. AllocsPerRun
// pins GOMAXPROCS to 1, so the kernels take their serial path and the
// result is deterministic. Any regression here means a per-step
// allocation crept back into tensor/nn/embedding/core.
func TestTrainStepZeroAlloc(t *testing.T) {
	cfg := benchreport.BenchStepConfig()
	m := NewModel(cfg, 1)
	tr := NewTrainer(m, TrainerConfig{LR: 0.05})
	gen := NewGenerator(cfg, 2)
	batch := gen.NextBatch(128)
	// Warm every lazily-sized scratch buffer (activations, interaction
	// views, sparse-grad slabs, logit/grad buffers).
	for i := 0; i < 3; i++ {
		tr.Step(batch)
	}
	if avg := testing.AllocsPerRun(10, func() { tr.Step(batch) }); avg != 0 {
		t.Fatalf("Trainer.Step allocates %.1f objects per step at steady state, want 0", avg)
	}
}

// TestQuantizedStepZeroAlloc is the mixed-precision companion budget:
// a full hybrid-parallel step with bf16 embedding tables (split-SGD
// replica re-quantization on every touched row) and int8-compressed
// collective wires must stay within the hybrid engine's ≤2 allocs/step
// budget — the wire codecs run through reusable scratch, and the table
// replicas are fixed slabs, so quantization adds no steady-state heap
// traffic.
func TestQuantizedStepZeroAlloc(t *testing.T) {
	cfg := benchreport.BenchStepConfig()
	cfg.TableDType = tensor.BF16
	ht, err := hybrid.New(cfg, hybrid.Config{
		Ranks: 2, LR: 0.05, Seed: 1,
		WireA2A:       collective.WireINT8,
		WireAllReduce: collective.WireINT8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ht.Close()
	gen := data.NewGenerator(cfg, 2, data.DefaultOptions())
	batch := gen.NextBatch(128)
	for i := 0; i < 3; i++ {
		if _, _, err := ht.Step(batch); err != nil {
			t.Fatal(err)
		}
	}
	if avg := testing.AllocsPerRun(10, func() { ht.Step(batch) }); avg > 2 {
		t.Fatalf("quantized hybrid step allocates %.1f objects per step at steady state, want <= 2", avg)
	}
}

// TestNextBatchIntoRecyclesBuffers checks the batch-recycling path reuses
// storage across draws of the same batch size.
func TestNextBatchIntoRecyclesBuffers(t *testing.T) {
	cfg := ModelConfig{
		Name:          "recycle",
		DenseFeatures: 8,
		Sparse:        UniformSparse(2, 1000, 4),
		EmbeddingDim:  8,
		BottomMLP:     []int{16},
		TopMLP:        []int{16},
		Interaction:   InteractionConcat,
	}
	gen := NewGenerator(cfg, 3)
	mb := gen.NextBatch(64)
	dense := mb.Dense
	labels := &mb.Labels[0]
	got := gen.NextBatchInto(64, mb)
	if got != mb || got.Dense != dense || &got.Labels[0] != labels {
		t.Fatal("NextBatchInto did not recycle the dense/label buffers")
	}
	if err := got.Validate(&cfg); err != nil {
		t.Fatalf("recycled batch invalid: %v", err)
	}
}

package main

import (
	"strings"
	"testing"
)

func TestRunTrainsSmallModel(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-dense", "8", "-sparse", "2", "-hash", "100",
		"-dim", "8", "-batch", "32", "-iters", "20"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"model:", "iter", "examples/sec"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-dense", "0"}, &out); err == nil {
		t.Error("zero dense features accepted")
	}
	if err := run([]string{"-mode", "async"}, &out); err == nil {
		t.Error("unknown mode accepted")
	}
	if err := run([]string{"-mode", "hybrid", "-platform", "TPUv4"}, &out); err == nil {
		t.Error("unknown platform accepted")
	}
}

func TestRunHybridMode(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-mode", "hybrid", "-ranks", "2", "-dense", "8", "-sparse", "4",
		"-hash", "200", "-dim", "8", "-batch", "32", "-iters", "20"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"hybrid: 2 ranks", "iter", "step breakdown:",
		"collectives:", "examples/sec"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

func TestRunTrainsSmallModel(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-dense", "8", "-sparse", "2", "-hash", "100",
		"-dim", "8", "-batch", "32", "-iters", "20"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"model:", "iter", "examples/sec"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-dense", "0"}, &out); err == nil {
		t.Error("zero dense features accepted")
	}
	if err := run([]string{"-mode", "async"}, &out); err == nil {
		t.Error("unknown mode accepted")
	}
	if err := run([]string{"-mode", "hybrid", "-platform", "TPUv4"}, &out); err == nil {
		t.Error("unknown platform accepted")
	}
}

// TestRunFileModeSingle smoke-tests -data=file:<dir> with -materialize:
// the dataset is written, then trained from disk through the staged
// pipeline with parallel readers and dedup, in single mode.
func TestRunFileModeSingle(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	err := run([]string{"-data", "file:" + dir, "-materialize", "-readers", "2", "-dedup",
		"-dense", "8", "-sparse", "2", "-hash", "100", "-dim", "8",
		"-batch", "32", "-iters", "20"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"materializing", "ingest:", "2 readers", "dedup=true",
		"iter", "examples/sec", "ingest meters:", "dedup ratio"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	// Second run against the existing dataset must not re-materialize.
	var out2 strings.Builder
	err = run([]string{"-data", "file:" + dir, "-materialize", "-readers", "1",
		"-dense", "8", "-sparse", "2", "-hash", "100", "-dim", "8",
		"-batch", "32", "-iters", "10"}, &out2)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out2.String(), "materializing") {
		t.Errorf("existing dataset re-materialized:\n%s", out2.String())
	}
}

// TestRunFileModeHybrid smoke-tests the on-disk pipeline feeding the
// synchronous hybrid-parallel trainer.
func TestRunFileModeHybrid(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	err := run([]string{"-mode", "hybrid", "-ranks", "2", "-data", "file:" + dir,
		"-materialize", "-readers", "2", "-dedup",
		"-dense", "8", "-sparse", "4", "-hash", "200", "-dim", "8",
		"-batch", "32", "-iters", "20"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"hybrid: 2 ranks", "ingest:", "iter", "step breakdown:",
		"collectives:", "ingest meters:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestTelemetryTraceGolden validates the -telemetry.trace export against
// the Chrome trace_event golden schema: a traceEvents array whose "M"
// metadata events name every shard and whose "X" complete events carry
// the full (name, cat, ts, dur, pid, tid) key set with names drawn from
// the telemetry phase taxonomy.
func TestTelemetryTraceGolden(t *testing.T) {
	traceFile := filepath.Join(t.TempDir(), "trace.json")
	var out strings.Builder
	err := run([]string{"-mode", "hybrid", "-ranks", "2", "-dense", "8", "-sparse", "4",
		"-hash", "200", "-dim", "8", "-batch", "32", "-iters", "20",
		"-telemetry.trace", traceFile, "-telemetry.report"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"attribution", "phase coverage=", "timeline:",
		"registry snapshot:", "hybrid/steps", "telemetry: wrote Chrome trace"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}

	raw, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if trace.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q, want ns", trace.DisplayTimeUnit)
	}
	phases := map[string]bool{}
	for p := telemetry.Phase(0); p < telemetry.NumPhases; p++ {
		phases[p.String()] = true
	}
	var meta, complete int
	for _, ev := range trace.TraceEvents {
		switch ev["ph"] {
		case "M":
			meta++
			if ev["name"] != "thread_name" {
				t.Errorf("metadata event name %v, want thread_name", ev["name"])
			}
		case "X":
			complete++
			for _, key := range []string{"name", "cat", "ts", "dur", "pid", "tid"} {
				if _, ok := ev[key]; !ok {
					t.Fatalf("complete event missing %q: %v", key, ev)
				}
			}
			if !phases[ev["name"].(string)] {
				t.Errorf("event name %v is not a telemetry phase", ev["name"])
			}
		default:
			t.Errorf("unexpected event phase type %v", ev["ph"])
		}
	}
	if meta < 2 || complete == 0 {
		t.Errorf("trace has %d metadata and %d complete events, want >=2 and >0", meta, complete)
	}
}

func TestRunFileModeErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-data", "file:"}, &out); err == nil {
		t.Error("empty file dir accepted")
	}
	if err := run([]string{"-data", "file:" + t.TempDir()}, &out); err == nil {
		t.Error("missing dataset accepted without -materialize")
	}
	if err := run([]string{"-data", "hdfs://x"}, &out); err == nil {
		t.Error("unknown -data scheme accepted")
	}
}

// TestRunCheckpointResume smoke-tests -ckpt.dir/-ckpt.every/-resume in
// single mode: the first run saves periodic checkpoints, the second
// resumes from the latest one.
func TestRunCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	base := []string{"-dense", "8", "-sparse", "2", "-hash", "100", "-dim", "8",
		"-batch", "32", "-ckpt.dir", dir, "-ckpt.every", "10"}
	var out strings.Builder
	if err := run(append(base, "-iters", "20"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "checkpoint: saved ck-00000020") {
		t.Errorf("output missing checkpoint save:\n%s", out.String())
	}
	var out2 strings.Builder
	if err := run(append(base, "-resume", "-iters", "10"), &out2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out2.String(), "checkpoint: resumed ck-00000020") {
		t.Errorf("output missing resume line:\n%s", out2.String())
	}
	if !strings.Contains(out2.String(), "checkpoint: saved ck-00000030") {
		t.Errorf("resumed run did not continue the checkpoint sequence:\n%s", out2.String())
	}
}

// TestRunHybridFaults smoke-tests the elastic path: a scheduled rank
// kill mid-run, recovery from the checkpoint store, and a completed run.
func TestRunHybridFaults(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	err := run([]string{"-mode", "hybrid", "-ranks", "2", "-dense", "8", "-sparse", "4",
		"-hash", "200", "-dim", "8", "-batch", "32", "-iters", "30",
		"-ckpt.dir", dir, "-ckpt.every", "10", "-faults", "kill:1@15"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"elastic (1 scheduled faults", "kill fault at step 15",
		"restored ck-00000010", "rejoined 2 ranks at step 10", "1 recoveries"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunCkptFlagErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-resume"}, &out); err == nil {
		t.Error("-resume without -ckpt.dir accepted")
	}
	if err := run([]string{"-faults", "kill:0@1"}, &out); err == nil {
		t.Error("-faults without -ckpt.dir accepted")
	}
	if err := run([]string{"-ckpt.dir", t.TempDir(), "-ckpt.every", "0"}, &out); err == nil {
		t.Error("non-positive -ckpt.every accepted")
	}
	if err := run([]string{"-ckpt.dir", t.TempDir(), "-faults", "kill:0@1"}, &out); err == nil {
		t.Error("-faults in single mode accepted")
	}
	if err := run([]string{"-mode", "hybrid", "-ckpt.dir", t.TempDir(), "-faults", "bogus"}, &out); err == nil {
		t.Error("malformed -faults accepted")
	}
}

func TestRunHybridMode(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-mode", "hybrid", "-ranks", "2", "-dense", "8", "-sparse", "4",
		"-hash", "200", "-dim", "8", "-batch", "32", "-iters", "20"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"hybrid: 2 ranks", "iter", "step breakdown:",
		"collectives:", "examples/sec"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunMixedPrecision smoke-tests the -precision.* flags: bf16 tables
// on the single trainer, bf16 tables + int8 wire in hybrid mode (with
// the dtype-aware analytic volumes in the collectives line), and flag
// validation.
func TestRunMixedPrecision(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-dense", "8", "-sparse", "2", "-hash", "100",
		"-dim", "8", "-batch", "32", "-iters", "20", "-precision.tables", "bf16"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "precision: bf16 embedding tables") {
		t.Errorf("missing precision line:\n%s", out.String())
	}

	out.Reset()
	err = run([]string{"-mode", "hybrid", "-ranks", "2", "-dense", "8", "-sparse", "2",
		"-hash", "100", "-dim", "8", "-batch", "32", "-iters", "20",
		"-precision.tables", "bf16", "-precision.wire", "int8"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"wire int8", "collectives:", "analytic"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("hybrid output missing %q:\n%s", want, out.String())
		}
	}

	if err := run([]string{"-precision.tables", "fp8"}, &out); err == nil {
		t.Error("unknown table dtype accepted")
	}
	if err := run([]string{"-precision.wire", "fp64"}, &out); err == nil {
		t.Error("unknown wire format accepted")
	}
}

// Command dlrmtrain trains a real DLRM on synthetic click data and
// reports loss, normalized entropy, and throughput — the minimal
// end-to-end exercise of the training stack.
//
//	dlrmtrain -dense 64 -sparse 8 -batch 256 -iters 500 -lr 0.05
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/xrand"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dlrmtrain", flag.ContinueOnError)
	fs.SetOutput(out)
	dense := fs.Int("dense", 32, "dense feature count")
	sparse := fs.Int("sparse", 8, "sparse feature count")
	hash := fs.Int("hash", 10000, "hash size per table")
	dim := fs.Int("dim", 16, "embedding dimension")
	batch := fs.Int("batch", 256, "mini-batch size")
	iters := fs.Int("iters", 500, "training iterations")
	lr := fs.Float64("lr", 0.05, "learning rate")
	seed := fs.Int64("seed", 1, "seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := core.Config{
		Name:          "dlrmtrain",
		DenseFeatures: *dense,
		Sparse:        core.UniformSparse(*sparse, *hash, 5),
		EmbeddingDim:  *dim,
		BottomMLP:     []int{64},
		TopMLP:        []int{64, 32},
		Interaction:   core.DotProduct,
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	fmt.Fprintf(out, "model: %d dense, %d sparse x %d rows, %s embeddings\n",
		cfg.DenseFeatures, cfg.NumSparse(), *hash, core.HumanBytes(cfg.EmbeddingBytes()))

	m := core.NewModel(cfg, xrand.New(*seed))
	tr := core.NewTrainer(m, core.TrainerConfig{Optimizer: core.OptAdagrad, LR: *lr})
	gen := data.NewGenerator(cfg, *seed+1, data.DefaultOptions())

	start := time.Now()
	for i := 0; i < *iters; i++ {
		loss := tr.Step(gen.NextBatch(*batch))
		if (i+1)%100 == 0 || i == 0 {
			eval := core.Evaluate(m, gen.Fork(999).EvalSet(4, 256))
			fmt.Fprintf(out, "iter %5d  loss %.4f  NE %.4f  acc %.4f\n", i+1, loss, eval.NE, eval.Accuracy)
		}
	}
	elapsed := time.Since(start)
	examples := float64(*iters * *batch)
	fmt.Fprintf(out, "trained %d examples in %v (%.0f examples/sec)\n",
		int(examples), elapsed.Round(time.Millisecond), examples/elapsed.Seconds())
	return nil
}

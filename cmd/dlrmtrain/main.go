// Command dlrmtrain trains a real DLRM on synthetic click data and
// reports loss, normalized entropy, and throughput — the minimal
// end-to-end exercise of the training stack. -mode=hybrid runs the same
// workload on the synchronous hybrid-parallel engine (data-parallel MLPs
// via all-reduce, model-parallel embeddings via all-to-all) and prints
// the paper-style operator breakdown.
//
//	dlrmtrain -dense 64 -sparse 8 -batch 256 -iters 500 -lr 0.05
//	dlrmtrain -mode hybrid -ranks 4 -batch 256 -iters 500
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/hw"
	"repro/internal/hybrid"
	"repro/internal/perfmodel"
	"repro/internal/xrand"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dlrmtrain", flag.ContinueOnError)
	fs.SetOutput(out)
	dense := fs.Int("dense", 32, "dense feature count")
	sparse := fs.Int("sparse", 8, "sparse feature count")
	hash := fs.Int("hash", 10000, "hash size per table")
	dim := fs.Int("dim", 16, "embedding dimension")
	batch := fs.Int("batch", 256, "mini-batch size (global, in hybrid mode)")
	iters := fs.Int("iters", 500, "training iterations")
	lr := fs.Float64("lr", 0.05, "learning rate")
	seed := fs.Int64("seed", 1, "seed")
	mode := fs.String("mode", "single", "trainer: single (one process) or hybrid (synchronous hybrid-parallel)")
	ranks := fs.Int("ranks", 2, "synchronous ranks in hybrid mode")
	platform := fs.String("platform", "BigBasin", "platform whose interconnect prices hybrid collectives")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := core.Config{
		Name:          "dlrmtrain",
		DenseFeatures: *dense,
		Sparse:        core.UniformSparse(*sparse, *hash, 5),
		EmbeddingDim:  *dim,
		BottomMLP:     []int{64},
		TopMLP:        []int{64, 32},
		Interaction:   core.DotProduct,
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	fmt.Fprintf(out, "model: %d dense, %d sparse x %d rows, %s embeddings\n",
		cfg.DenseFeatures, cfg.NumSparse(), *hash, core.HumanBytes(cfg.EmbeddingBytes()))

	switch *mode {
	case "single":
		return runSingle(out, cfg, *batch, *iters, *lr, *seed)
	case "hybrid":
		return runHybrid(out, cfg, *batch, *iters, *lr, *seed, *ranks, *platform)
	default:
		return fmt.Errorf("dlrmtrain: unknown mode %q (single, hybrid)", *mode)
	}
}

func runSingle(out io.Writer, cfg core.Config, batch, iters int, lr float64, seed int64) error {
	m := core.NewModel(cfg, xrand.New(seed))
	tr := core.NewTrainer(m, core.TrainerConfig{Optimizer: core.OptAdagrad, LR: lr})
	gen := data.NewGenerator(cfg, seed+1, data.DefaultOptions())

	start := time.Now()
	for i := 0; i < iters; i++ {
		loss := tr.Step(gen.NextBatch(batch))
		if (i+1)%100 == 0 || i == 0 {
			eval := core.Evaluate(m, gen.Fork(999).EvalSet(4, 256))
			fmt.Fprintf(out, "iter %5d  loss %.4f  NE %.4f  acc %.4f\n", i+1, loss, eval.NE, eval.Accuracy)
		}
	}
	reportThroughput(out, iters, batch, time.Since(start))
	return nil
}

func runHybrid(out io.Writer, cfg core.Config, batch, iters int, lr float64, seed int64, ranks int, platform string) error {
	p, err := hw.ByName(platform)
	if err != nil {
		return err
	}
	link := collective.LinkFor(p)
	ht, err := hybrid.New(cfg, hybrid.Config{
		Ranks: ranks, LR: lr, Seed: seed, Overlap: ranks > 1, Link: link,
	})
	if err != nil {
		return err
	}
	defer ht.Close()
	gen := data.NewGenerator(cfg, seed+1, data.DefaultOptions())
	fmt.Fprintf(out, "hybrid: %d ranks, link %s, all-reduce overlapped=%v\n",
		ranks, link.Name, ranks > 1)

	var comp, a2a, ar, exposed, step float64
	start := time.Now()
	for i := 0; i < iters; i++ {
		loss, bd := ht.Step(gen.NextBatch(batch))
		comp += bd.Compute
		a2a += bd.AllToAll
		ar += bd.AllReduce
		exposed += bd.Exposed
		step += bd.Step
		if (i+1)%100 == 0 || i == 0 {
			eval := core.Evaluate(ht.EvalModel(), gen.Fork(999).EvalSet(4, 256))
			fmt.Fprintf(out, "iter %5d  loss %.4f  NE %.4f  acc %.4f\n", i+1, loss, eval.NE, eval.Accuracy)
		}
	}
	reportThroughput(out, iters, batch, time.Since(start))

	if step > 0 {
		fmt.Fprintf(out, "step breakdown: compute %.0f%%  all-to-all %.0f%%  all-reduce %.0f%%  exposed comm %.0f%%\n",
			100*comp/step, 100*a2a/step, 100*ar/step, 100*exposed/step)
	}
	if iters > 0 {
		st := ht.CollectiveStats()
		fmt.Fprintf(out, "collectives: all-to-all %s/iter (analytic %s), all-reduce %s/iter (analytic %s)\n",
			core.HumanBytes(st.AllToAll.Bytes/int64(iters)),
			core.HumanBytes(int64(perfmodel.HybridAllToAllBytes(cfg, batch, ranks))),
			core.HumanBytes(st.AllReduce.Bytes/int64(iters)),
			core.HumanBytes(int64(perfmodel.HybridAllReduceBytes(cfg, ranks))))
	}
	return nil
}

func reportThroughput(out io.Writer, iters, batch int, elapsed time.Duration) {
	examples := float64(iters * batch)
	fmt.Fprintf(out, "trained %d examples in %v (%.0f examples/sec)\n",
		int(examples), elapsed.Round(time.Millisecond), examples/elapsed.Seconds())
}

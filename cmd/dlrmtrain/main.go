// Command dlrmtrain trains a real DLRM on synthetic click data and
// reports loss, normalized entropy, and throughput — the minimal
// end-to-end exercise of the training stack. -mode=hybrid runs the same
// workload on the synchronous hybrid-parallel engine (data-parallel MLPs
// via all-reduce, model-parallel embeddings via all-to-all) and prints
// the paper-style operator breakdown. -data=file:<dir> swaps the
// in-memory generator for the staged ingestion pipeline over a sharded
// on-disk dataset (-readers parallel decoders, optional RecD -dedup),
// printing the pipeline's per-stage meters. -ckpt.dir enables durable
// sharded checkpoints (full + incremental) every -ckpt.every iterations,
// -resume restarts from the latest one, and -faults injects collective
// faults that the elastic hybrid loop survives by rolling back to the
// last checkpoint and rejoining.
//
//	dlrmtrain -dense 64 -sparse 8 -batch 256 -iters 500 -lr 0.05
//	dlrmtrain -mode hybrid -ranks 4 -batch 256 -iters 500
//	dlrmtrain -data file:/tmp/ds -materialize -readers 4 -dedup
//	dlrmtrain -ckpt.dir /tmp/ck -ckpt.every 100 -iters 200 && dlrmtrain -ckpt.dir /tmp/ck -resume -iters 100
//	dlrmtrain -mode hybrid -ranks 2 -ckpt.dir /tmp/ck -ckpt.every 50 -faults kill:1@120
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/ckpt"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/hw"
	"repro/internal/hybrid"
	"repro/internal/ingest"
	"repro/internal/perfmodel"
	"repro/internal/placement"
	"repro/internal/telemetry"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// feed is the resolved batch supply: an in-memory generator (with
// held-out evaluation) or the on-disk ingestion pipeline (with meters).
type feed struct {
	src  core.BatchSource
	gen  *data.Generator  // non-nil in synthetic mode (enables eval)
	pipe *ingest.Pipeline // non-nil in file mode (enables meters)
	done func()
	once sync.Once
}

// close shuts the feed down exactly once. The runners call it before
// exporting telemetry — Tracer.Snapshot needs the ingest stage
// goroutines quiescent — and run's defer covers the error paths.
func (f *feed) close() {
	if f.done != nil {
		f.once.Do(f.done)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dlrmtrain", flag.ContinueOnError)
	fs.SetOutput(out)
	dense := fs.Int("dense", 32, "dense feature count")
	sparse := fs.Int("sparse", 8, "sparse feature count")
	hash := fs.Int("hash", 10000, "hash size per table")
	dim := fs.Int("dim", 16, "embedding dimension")
	batch := fs.Int("batch", 256, "mini-batch size (global, in hybrid mode)")
	iters := fs.Int("iters", 500, "training iterations")
	lr := fs.Float64("lr", 0.05, "learning rate")
	seed := fs.Int64("seed", 1, "seed")
	mode := fs.String("mode", "single", "trainer: single (one process) or hybrid (synchronous hybrid-parallel)")
	ranks := fs.Int("ranks", 2, "synchronous ranks in hybrid mode")
	platform := fs.String("platform", "BigBasin", "platform whose interconnect prices hybrid collectives")
	dataFlag := fs.String("data", "synthetic", "batch supply: synthetic (in-memory generator) or file:<dir> (sharded on-disk dataset)")
	readers := fs.Int("readers", 2, "parallel shard decoders in file mode")
	dedup := fs.Bool("dedup", false, "RecD-style within-batch sparse dedup in file mode")
	materialize := fs.Bool("materialize", false, "write the synthetic dataset to the -data dir first if it has no manifest")
	traceFile := fs.String("telemetry.trace", "", "write a Chrome trace_event JSON of the run to this file")
	httpAddr := fs.String("telemetry.http", "", "serve /metrics, /debug/vars and /debug/pprof on this address for the run's duration")
	report := fs.Bool("telemetry.report", false, "print the per-phase attribution report and ASCII timeline after training")
	doctor := fs.Bool("telemetry.doctor", false, "diagnose the run after training: boundedness verdict, straggler analysis, ranked findings")
	watch := fs.Bool("telemetry.watch", false, "arm the flight recorder and render the ASCII sparkline dashboard of the per-step time-series at each progress interval")
	blackbox := fs.String("telemetry.blackbox", "", "arm the flight recorder to dump blackbox-<step>/ bundles into this directory when an online anomaly detector fires")
	ckptDir := fs.String("ckpt.dir", "", "durable checkpoint directory (enables periodic checkpointing)")
	ckptEvery := fs.Int("ckpt.every", 100, "iterations between checkpoints when -ckpt.dir is set")
	resume := fs.Bool("resume", false, "resume from the latest checkpoint in -ckpt.dir before training")
	faults := fs.String("faults", "", "collective fault schedule, e.g. kill:1@120,delay:0@40+2ms (hybrid mode, needs -ckpt.dir)")
	precTables := fs.String("precision.tables", "fp32", "embedding-table storage dtype: fp32, bf16 or fp16 (fp32 masters + split-SGD either way)")
	precWire := fs.String("precision.wire", "fp32", "collective wire format in hybrid mode: fp32, fp16, bf16 or int8 (per-chunk scaled)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	tableDT, err := tensor.ParseDType(*precTables)
	if err != nil {
		return err
	}
	wire, err := collective.ParseWireFormat(*precWire)
	if err != nil {
		return err
	}

	cfg := core.Config{
		Name:          "dlrmtrain",
		DenseFeatures: *dense,
		Sparse:        core.UniformSparse(*sparse, *hash, 5),
		EmbeddingDim:  *dim,
		BottomMLP:     []int{64},
		TopMLP:        []int{64, 32},
		Interaction:   core.DotProduct,
		TableDType:    tableDT,
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	if tableDT != tensor.FP32 {
		fmt.Fprintf(out, "precision: %s embedding tables (fp32 masters, split-SGD), %s lookup-path bytes\n",
			tableDT, core.HumanBytes(cfg.EmbeddingBytes()))
	}

	tel, err := newTelemetry(out, *traceFile, *httpAddr, *report, *doctor, *watch, *blackbox, *mode, *ranks, *dataFlag, *readers)
	if err != nil {
		return err
	}

	// The checkpoint store opens after telemetry so its save/restore
	// spans land on the tracer's dedicated "ckpt" shard.
	co, err := openCkpt(*ckptDir, *ckptEvery, *resume, *faults, *mode, *dataFlag, tel)
	if err != nil {
		return err
	}

	fd, cfg, err := openFeed(out, cfg, *dataFlag, *batch, *readers, *dedup, *materialize, *seed, tel)
	if err != nil {
		return err
	}
	defer fd.close()
	fmt.Fprintf(out, "model: %d dense, %d sparse x %d rows, %s embeddings\n",
		cfg.DenseFeatures, cfg.NumSparse(), cfg.Sparse[0].HashSize, core.HumanBytes(cfg.EmbeddingBytes()))

	switch *mode {
	case "single":
		return runSingle(out, cfg, fd, *batch, *iters, *lr, *seed, tel, co)
	case "hybrid":
		if co != nil && co.faults != nil {
			fd.close()
			return runHybridElastic(out, cfg, *batch, *iters, *lr, *seed, *ranks, *platform, wire, tel, co)
		}
		return runHybrid(out, cfg, fd, *batch, *iters, *lr, *seed, *ranks, *platform, wire, tel, co)
	default:
		return fmt.Errorf("dlrmtrain: unknown mode %q (single, hybrid)", *mode)
	}
}

// fullCompactEvery bounds the delta chain: every 8th periodic save is a
// full compaction, the rest stream only rows touched since the last save.
const fullCompactEvery = 8

// ckptOpts is the resolved durability configuration of a run.
type ckptOpts struct {
	store  *ckpt.Store
	every  int
	resume bool
	faults *collective.FaultSchedule
}

func openCkpt(dir string, every int, resume bool, faults, mode, dataFlag string, tel *telem) (*ckptOpts, error) {
	if dir == "" {
		if resume {
			return nil, fmt.Errorf("dlrmtrain: -resume needs -ckpt.dir")
		}
		if faults != "" {
			return nil, fmt.Errorf("dlrmtrain: -faults needs -ckpt.dir to recover into")
		}
		return nil, nil
	}
	if every <= 0 {
		return nil, fmt.Errorf("dlrmtrain: -ckpt.every must be positive, got %d", every)
	}
	var store *ckpt.Store
	var err error
	if tel != nil {
		store, err = ckpt.OpenStoreWith(dir, tel.reg, tel.tracer, tel.ckptShard)
	} else {
		store, err = ckpt.OpenStore(dir)
	}
	if err != nil {
		return nil, err
	}
	co := &ckptOpts{store: store, every: every, resume: resume}
	if faults != "" {
		if mode != "hybrid" {
			return nil, fmt.Errorf("dlrmtrain: -faults needs -mode=hybrid (single mode has no collectives)")
		}
		if dataFlag != "synthetic" {
			return nil, fmt.Errorf("dlrmtrain: -faults needs -data=synthetic (recovery replays the batch stream)")
		}
		if co.faults, err = collective.ParseFaultSchedule(faults); err != nil {
			return nil, err
		}
	}
	return co, nil
}

// telem bundles the optional observability surfaces of a run: one tracer
// shared by the trainer (shards [0, feedShard)) and the ingest pipeline
// (shards from feedShard), one registry absorbing every subsystem meter,
// and the export destinations chosen on the command line. A nil telem
// (no -telemetry.* flag set) keeps every hot path untraced.
type telem struct {
	tracer    *telemetry.Tracer
	reg       *telemetry.Registry
	rec       *telemetry.FlightRecorder
	feedShard int
	ckptShard int
	traceFile string
	report    bool
	doctor    bool
	watch     bool
}

func newTelemetry(out io.Writer, traceFile, httpAddr string, report, doctor, watch bool, blackbox, mode string, ranks int, dataFlag string, readers int) (*telem, error) {
	if traceFile == "" && httpAddr == "" && !report && !doctor && !watch && blackbox == "" {
		return nil, nil
	}
	trainShards := 1
	if mode == "hybrid" {
		trainShards = hybrid.Config{Ranks: ranks, Overlap: ranks > 1}.ShardCount()
	}
	feedShards := 0
	if strings.HasPrefix(dataFlag, "file:") {
		feedShards = ingest.Options{Readers: readers}.ShardCount()
	}
	t := &telem{
		tracer:    telemetry.NewTracer(trainShards+feedShards+1, 1<<15),
		reg:       telemetry.NewRegistry(),
		feedShard: trainShards,
		ckptShard: trainShards + feedShards,
		traceFile: traceFile,
		report:    report,
		doctor:    doctor,
		watch:     watch,
	}
	if mode != "hybrid" {
		t.tracer.NameShard(0, "trainer")
	}
	t.tracer.NameShard(t.ckptShard, "ckpt")
	telemetry.RegisterPhaseHists(t.reg, t.tracer)
	// The flight recorder rides every telemetry-enabled run: its
	// per-step sampling is part of the <3% observability budget, and
	// /timeseries plus the dashboard want the series even when no
	// bundle directory is armed.
	recRanks := 1
	if mode == "hybrid" {
		recRanks = ranks
	}
	rec, err := telemetry.OpenFlightRecorder(telemetry.FlightRecorderConfig{
		Dir: blackbox, Tracer: t.tracer, Registry: t.reg, Ranks: recRanks,
		Logf: func(format string, args ...any) { fmt.Fprintf(out, format+"\n", args...) },
	})
	if err != nil {
		return nil, err
	}
	t.rec = rec
	if blackbox != "" {
		fmt.Fprintf(out, "telemetry: flight recorder armed, black-box bundles land in %s\n", blackbox)
	}
	if httpAddr != "" {
		srv, err := telemetry.Serve(httpAddr, t.reg, telemetry.WithTimeseries(rec.Timeseries()))
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(out, "telemetry: serving /metrics, /timeseries, /healthz, /debug/vars, /debug/pprof on %s\n", srv.Addr)
	}
	return t, nil
}

// dashboard renders the live sparkline panel at a progress interval.
func (t *telem) dashboard(out io.Writer) {
	if t == nil || !t.watch {
		return
	}
	fmt.Fprint(out, t.rec.Timeseries().Dashboard(72))
}

// finish exports the collected trace: the attribution report and ASCII
// timeline to out, and/or the Chrome trace_event JSON to -telemetry.trace.
func (t *telem) finish(out io.Writer, predicted map[telemetry.Phase]float64) error {
	if t == nil {
		return nil
	}
	snap := t.tracer.Snapshot()
	if t.watch {
		fmt.Fprintf(out, "\ntimeseries dashboard:\n%s", t.rec.Timeseries().Dashboard(72))
	}
	if findings := t.rec.Findings(); len(findings) > 0 {
		fmt.Fprintf(out, "\nflight recorder: %d finding(s)\n", len(findings))
		for _, f := range findings {
			fmt.Fprintf(out, "  %s\n", f)
		}
		for _, b := range t.rec.Bundles() {
			fmt.Fprintf(out, "  bundle: %s\n", b)
		}
	}
	if t.report {
		attr := telemetry.Attribute(snap)
		fmt.Fprintf(out, "\nattribution (observed vs analytic perfmodel):\n%s", attr.Render(predicted))
		fmt.Fprintf(out, "\ntimeline:\n%s", snap.Timeline(72))
		fmt.Fprintf(out, "\nregistry snapshot:\n%s", t.reg.Snapshot().Render())
	}
	if t.doctor {
		rep := telemetry.Diagnose(telemetry.DoctorInput{
			Snap: snap, Metrics: t.reg.Snapshot(), Predicted: predicted,
		})
		fmt.Fprintf(out, "\n%s", rep.Render())
	}
	if t.traceFile != "" {
		f, err := os.Create(t.traceFile)
		if err != nil {
			return err
		}
		if err := telemetry.WriteChromeTrace(f, snap); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "telemetry: wrote Chrome trace (%d spans, %d dropped) to %s\n",
			len(snap.Spans), snap.Dropped, t.traceFile)
	}
	return nil
}

// openFeed resolves -data. In file mode the dataset's feature space
// (dense width, hash sizes) replaces the flag-built one so the model
// matches what is on disk.
func openFeed(out io.Writer, cfg core.Config, dataFlag string, batch, readers int, dedup, materialize bool, seed int64, tel *telem) (*feed, core.Config, error) {
	switch {
	case dataFlag == "synthetic":
		gen := data.NewGenerator(cfg, seed+1, data.DefaultOptions())
		return &feed{src: gen.NewSource(batch), gen: gen, done: func() {}}, cfg, nil

	case strings.HasPrefix(dataFlag, "file:"):
		dir := strings.TrimPrefix(dataFlag, "file:")
		if dir == "" {
			return nil, cfg, fmt.Errorf("dlrmtrain: -data file: needs a directory")
		}
		if materialize {
			if _, err := os.Stat(dir + "/MANIFEST.json"); os.IsNotExist(err) {
				fmt.Fprintf(out, "materializing synthetic dataset in %s (8 shards x %d examples)\n", dir, 4*batch)
				gen := data.NewGenerator(cfg, seed+1, data.DefaultOptions())
				if err := gen.WriteShards(dir, 8, 4*batch); err != nil {
					return nil, cfg, err
				}
			}
		}
		ds, err := ingest.OpenDataset(dir)
		if err != nil {
			return nil, cfg, err
		}
		fileCfg := ds.Config()
		fileCfg.Name = cfg.Name
		fileCfg.EmbeddingDim = cfg.EmbeddingDim
		fileCfg.BottomMLP = cfg.BottomMLP
		fileCfg.TopMLP = cfg.TopMLP
		fileCfg.Interaction = cfg.Interaction
		if err := fileCfg.Validate(); err != nil {
			ds.Close()
			return nil, cfg, err
		}
		iOpt := ingest.Options{
			BatchSize: batch, Readers: readers, Dedup: dedup, Seed: seed + 2,
		}
		if tel != nil {
			iOpt.Registry, iOpt.Trace, iOpt.TraceShard = tel.reg, tel.tracer, tel.feedShard
		}
		p, err := ingest.Open(ds, fileCfg, iOpt)
		if err != nil {
			ds.Close()
			return nil, cfg, err
		}
		fmt.Fprintf(out, "ingest: %s (%d examples, %d shards, %s), %d readers, dedup=%v\n",
			dir, ds.Examples(), len(ds.Manifest.Shards), core.HumanBytes(ds.Bytes()), readers, dedup)
		return &feed{src: p, pipe: p, done: func() { p.Close(); ds.Close() }}, fileCfg, nil

	default:
		return nil, cfg, fmt.Errorf("dlrmtrain: unknown -data %q (synthetic, file:<dir>)", dataFlag)
	}
}

// progressIters chunks the training loop for periodic reporting.
func progressIters(iters int) int {
	if iters < 100 {
		return iters
	}
	return 100
}

// resumeLine reports a restore attempt: resumed, cold start, or error.
func resumeLine(out io.Writer, info ckpt.RestoreInfo, err error) error {
	switch {
	case err == nil:
		fmt.Fprintf(out, "checkpoint: resumed %s\n", info)
	case errors.Is(err, ckpt.ErrNoCheckpoint):
		fmt.Fprintln(out, "checkpoint: store empty, cold start")
	default:
		return err
	}
	return nil
}

func runSingle(out io.Writer, cfg core.Config, fd *feed, batch, iters int, lr float64, seed int64, tel *telem, co *ckptOpts) error {
	m := core.NewModel(cfg, xrand.New(seed))
	tr := core.NewTrainer(m, core.TrainerConfig{Optimizer: core.OptAdagrad, LR: lr})
	if tel != nil {
		tr.SetTrace(tel.tracer, 0)
		tr.SetRecorder(tel.rec)
	}
	if co != nil && co.resume {
		info, err := tr.RestoreCheckpoint(co.store)
		if err := resumeLine(out, info, err); err != nil {
			return err
		}
	}

	start := time.Now()
	trained := 0
	for trained < iters {
		chunk := min(progressIters(iters), iters-trained)
		if co != nil {
			chunk = min(chunk, co.every-tr.Iter()%co.every)
		}
		loss, steps, err := tr.TrainFrom(fd.src, chunk)
		if err != nil {
			return err
		}
		trained += steps
		if steps == 0 {
			break // finite dataset exhausted
		}
		if co != nil && tr.Iter()%co.every == 0 {
			info, err := tr.SaveCheckpoint(co.store, fullCompactEvery)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "checkpoint: saved %s\n", info)
		}
		if fd.gen != nil {
			eval := core.Evaluate(m, fd.gen.Fork(999).EvalSet(4, 256))
			fmt.Fprintf(out, "iter %5d  loss %.4f  NE %.4f  acc %.4f\n", trained, loss, eval.NE, eval.Accuracy)
		} else {
			fmt.Fprintf(out, "iter %5d  loss %.4f\n", trained, loss)
		}
		tel.dashboard(out)
	}
	reportThroughput(out, trained, batch, time.Since(start))
	reportIngest(out, fd)
	fd.close() // quiesce ingest goroutines before snapshotting the trace
	return tel.finish(out, nil)
}

func runHybrid(out io.Writer, cfg core.Config, fd *feed, batch, iters int, lr float64, seed int64, ranks int, platform string, wire collective.WireFormat, tel *telem, co *ckptOpts) error {
	p, err := hw.ByName(platform)
	if err != nil {
		return err
	}
	link := collective.LinkFor(p)
	hc := hybrid.Config{
		Ranks: ranks, LR: lr, Seed: seed, Overlap: ranks > 1, Link: link,
		WireA2A: wire, WireAllReduce: wire,
	}
	if tel != nil {
		hc.Registry, hc.Trace, hc.TraceShard = tel.reg, tel.tracer, 0
		hc.Recorder = tel.rec
	}
	ht, err := hybrid.New(cfg, hc)
	if err != nil {
		return err
	}
	defer ht.Close()
	fmt.Fprintf(out, "hybrid: %d ranks, link %s, all-reduce overlapped=%v, wire %s\n",
		ranks, link.Name, ranks > 1, wire)
	if co != nil && co.resume {
		info, err := ht.RestoreCheckpoint(co.store)
		if err := resumeLine(out, info, err); err != nil {
			return err
		}
	}

	var bd hybrid.StepBreakdown
	start := time.Now()
	trained := 0
	for trained < iters {
		chunk := min(progressIters(iters), iters-trained)
		if co != nil {
			chunk = min(chunk, co.every-ht.Iter()%co.every)
		}
		loss, part, steps, err := ht.TrainFrom(fd.src, chunk)
		if err != nil {
			return err
		}
		trained += steps
		bd.Compute += part.Compute
		bd.AllToAll += part.AllToAll
		bd.AllReduce += part.AllReduce
		bd.Exposed += part.Exposed
		bd.Step += part.Step
		if steps == 0 {
			break
		}
		if co != nil && ht.Iter()%co.every == 0 {
			info, err := ht.SaveCheckpoint(co.store, fullCompactEvery)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "checkpoint: saved %s\n", info)
		}
		if fd.gen != nil {
			eval := core.Evaluate(ht.EvalModel(), fd.gen.Fork(999).EvalSet(4, 256))
			fmt.Fprintf(out, "iter %5d  loss %.4f  NE %.4f  acc %.4f\n", trained, loss, eval.NE, eval.Accuracy)
		} else {
			fmt.Fprintf(out, "iter %5d  loss %.4f\n", trained, loss)
		}
		tel.dashboard(out)
	}
	reportThroughput(out, trained, batch, time.Since(start))
	reportIngest(out, fd)

	if bd.Step > 0 {
		fmt.Fprintf(out, "step breakdown: compute %.0f%%  all-to-all %.0f%%  all-reduce %.0f%%  exposed comm %.0f%%\n",
			100*bd.Compute/bd.Step, 100*bd.AllToAll/bd.Step, 100*bd.AllReduce/bd.Step, 100*bd.Exposed/bd.Step)
	}
	if trained > 0 {
		st := ht.CollectiveStats()
		bpe := wire.BytesPerElem()
		fmt.Fprintf(out, "collectives: all-to-all %s/iter (analytic %s), all-reduce %s/iter (analytic %s)\n",
			core.HumanBytes(st.AllToAll.Bytes/int64(trained)),
			core.HumanBytes(int64(perfmodel.HybridAllToAllBytesWire(cfg, batch, ranks, bpe))),
			core.HumanBytes(st.AllReduce.Bytes/int64(trained)),
			core.HumanBytes(int64(perfmodel.HybridAllReduceBytesWire(cfg, ranks, bpe))))
	}
	fd.close() // quiesce ingest goroutines before snapshotting the trace
	return tel.finish(out, predictedPhases(cfg, p, batch))
}

// runHybridElastic drives the fault-tolerant elastic loop: faults from
// -faults strike mid-run, training rolls back to the last durable
// checkpoint in -ckpt.dir, the world rebuilds, and the deterministic
// synthetic stream replays — so the final loss curve matches an
// uninterrupted run bit-for-bit.
func runHybridElastic(out io.Writer, cfg core.Config, batch, iters int, lr float64, seed int64, ranks int, platform string, wire collective.WireFormat, tel *telem, co *ckptOpts) error {
	p, err := hw.ByName(platform)
	if err != nil {
		return err
	}
	link := collective.LinkFor(p)
	fmt.Fprintf(out, "hybrid: %d ranks, link %s, elastic (%d scheduled faults, checkpoint every %d iters)\n",
		ranks, link.Name, co.faults.Len(), co.every)
	hc := hybrid.Config{Ranks: ranks, LR: lr, Seed: seed, Overlap: ranks > 1, Link: link,
		WireA2A: wire, WireAllReduce: wire}
	var rec *telemetry.FlightRecorder
	if tel != nil {
		hc.Registry, hc.Trace, hc.TraceShard = tel.reg, tel.tracer, 0
		rec = tel.rec
	}
	res, err := hybrid.RunElastic(hybrid.ElasticConfig{
		Cfg:       cfg,
		HC:        hc,
		Recorder:  rec,
		Store:     co.store,
		CkptEvery: co.every,
		FullEvery: fullCompactEvery,
		Steps:     iters,
		Source: func(skip int) (core.BatchSource, func(), error) {
			// Same seed as openFeed's synthetic generator: recovery
			// fast-forwards the replayed stream past the restored step.
			gen := data.NewGenerator(cfg, seed+1, data.DefaultOptions())
			for i := 0; i < skip; i++ {
				gen.NextBatch(batch)
			}
			return gen.NewSource(batch), func() {}, nil
		},
		Faults: co.faults,
		Logf:   func(format string, args ...any) { fmt.Fprintf(out, format+"\n", args...) },
	})
	if err != nil {
		return err
	}
	var last float64
	if res.Steps > 0 {
		last = res.Losses[res.Steps-1]
	}
	fmt.Fprintf(out, "elastic: %d steps, final loss %.4f, %d recoveries (%v rebuild+restore, %s restored), %d checkpoints\n",
		res.Steps, last, res.Recoveries, res.RecoveryWall.Round(time.Millisecond),
		core.HumanBytes(res.BytesRestored), res.Saves)
	return tel.finish(out, predictedPhases(cfg, p, batch))
}

// predictedPhases estimates the analytic per-phase step time for the
// attribution report's predicted column. Attribution is still useful
// without it, so estimation failures (e.g. the model does not fit the
// platform) degrade to an observed-only report.
func predictedPhases(cfg core.Config, p hw.Platform, batch int) map[telemetry.Phase]float64 {
	plan, err := placement.Fit(cfg, p, placement.GPUMemory, 0)
	if err != nil {
		return nil
	}
	bd, err := perfmodel.Estimate(perfmodel.Scenario{Cfg: cfg, Platform: p, Batch: batch, Plan: plan})
	if err != nil {
		return nil
	}
	return perfmodel.PredictedPhases(bd)
}

func reportThroughput(out io.Writer, iters, batch int, elapsed time.Duration) {
	examples := float64(iters * batch)
	fmt.Fprintf(out, "trained %d examples in %v (%.0f examples/sec)\n",
		int(examples), elapsed.Round(time.Millisecond), examples/elapsed.Seconds())
}

func reportIngest(out io.Writer, fd *feed) {
	if fd.pipe == nil {
		return
	}
	m := fd.pipe.Meters()
	fmt.Fprintf(out, "ingest meters: read %.1f MB/s, dedup ratio %.2f, starved %.0f%%, ring occupancy %.2f\n",
		m.ReadMBps(), m.DedupRatio(), 100*m.StarvationFrac(), m.Occupancy())
}

package main

import (
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig10", "table3", "memtier"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list output missing %q", want)
		}
	}
}

func TestRunOneExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "table1", "-quick"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Zion") || !strings.Contains(out.String(), "Paper vs measured") {
		t.Errorf("table1 output incomplete:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "fig99"}, &out); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run(nil, &out); err == nil {
		t.Error("no mode selected must error")
	}
}

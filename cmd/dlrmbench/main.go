// Command dlrmbench regenerates the paper's tables and figures.
//
//	dlrmbench -list             enumerate experiments
//	dlrmbench -exp fig10        run one experiment
//	dlrmbench -all              run everything
//	dlrmbench -all -quick       shrunken real-training/fleet experiments
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids")
	exp := flag.String("exp", "", "experiment id to run")
	all := flag.Bool("all", false, "run every experiment")
	quick := flag.Bool("quick", false, "shrink real-training and fleet experiments")
	seed := flag.Int64("seed", 0, "experiment seed")
	flag.Parse()

	opt := experiments.Options{Quick: *quick, Seed: *seed}

	switch {
	case *list:
		for _, id := range experiments.IDs() {
			fmt.Printf("%-8s %s\n", id, experiments.Title(id))
		}
	case *all:
		for _, id := range experiments.IDs() {
			if err := runOne(id, opt); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	case *exp != "":
		if err := runOne(*exp, opt); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runOne(id string, opt experiments.Options) error {
	res, err := experiments.Run(id, opt)
	if err != nil {
		return err
	}
	fmt.Printf("==== %s — %s ====\n\n", res.ID, res.Title)
	fmt.Println(res.Output)
	fmt.Println("Paper vs measured:")
	fmt.Println(res.PaperNote)
	fmt.Println()
	return nil
}

// Command dlrmbench regenerates the paper's tables and figures.
//
//	dlrmbench -list             enumerate experiments
//	dlrmbench -exp fig10        run one experiment
//	dlrmbench -all              run everything
//	dlrmbench -all -quick       shrunken real-training/fleet experiments
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dlrmbench", flag.ContinueOnError)
	fs.SetOutput(out)
	list := fs.Bool("list", false, "list experiment ids")
	exp := fs.String("exp", "", "experiment id to run")
	all := fs.Bool("all", false, "run every experiment")
	quick := fs.Bool("quick", false, "shrink real-training and fleet experiments")
	seed := fs.Int64("seed", 0, "experiment seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	opt := experiments.Options{Quick: *quick, Seed: *seed}

	switch {
	case *list:
		for _, id := range experiments.IDs() {
			fmt.Fprintf(out, "%-8s %s\n", id, experiments.Title(id))
		}
		return nil
	case *all:
		for _, id := range experiments.IDs() {
			if err := runOne(out, id, opt); err != nil {
				return err
			}
		}
		return nil
	case *exp != "":
		return runOne(out, *exp, opt)
	default:
		fs.Usage()
		return fmt.Errorf("dlrmbench: pass -list, -exp, or -all")
	}
}

func runOne(out io.Writer, id string, opt experiments.Options) error {
	res, err := experiments.Run(id, opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "==== %s — %s ====\n\n", res.ID, res.Title)
	fmt.Fprintln(out, res.Output)
	fmt.Fprintln(out, "Paper vs measured:")
	fmt.Fprintln(out, res.PaperNote)
	fmt.Fprintln(out)
	return nil
}

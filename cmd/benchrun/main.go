// Command benchrun measures the training hot path and writes a
// machine-readable BENCH_<timestamp>.json report, giving each PR a
// recorded perf trajectory (examples/sec, ns/op, allocs/op, and the
// tiled-vs-naive / fused-vs-unfused ablation speedups).
//
//	benchrun                        # full run (~1s per benchmark), report in .
//	benchrun -o reports -mintime 3s # steadier numbers, custom output dir
//	benchrun -quick                 # CI smoke mode (tens of ms per benchmark)
//	benchrun -bench gemm            # only benchmarks whose name contains "gemm"
//	benchrun -baseline BENCH_old.json  # adds <name>_vs_baseline speedups
//	benchrun -compare latest        # regression-gate the two newest reports
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/benchreport"
	"repro/internal/metrics"
	"repro/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchrun", flag.ContinueOnError)
	fs.SetOutput(out)
	dir := fs.String("o", ".", "directory for the BENCH_<timestamp>.json report")
	quick := fs.Bool("quick", false, "smoke mode: ~30ms per benchmark")
	mintime := fs.Duration("mintime", time.Second, "measurement floor per benchmark")
	bench := fs.String("bench", "", "only run benchmarks whose name contains this substring")
	baseline := fs.String("baseline", "", "prior BENCH_*.json whose ns/op become the baseline")
	compare := fs.String("compare", "", "diff two reports instead of benchmarking: old.json,new.json, or \"latest\" for the two newest BENCH_*.json; exits non-zero on regression past tolerance")
	trend := fs.String("trend", "", "render the examples/sec trajectory across every BENCH_*.json report in this directory (\".\" for the repo root); informational, never fails the build")
	note := fs.String("note", "", "free-form note recorded in the report")
	httpAddr := fs.String("telemetry.http", "", "serve /metrics, /debug/vars and /debug/pprof on this address while benchmarks run")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *compare != "" {
		return runCompare(*compare, out)
	}
	if *trend != "" {
		return runTrend(*trend, out)
	}

	opts := benchreport.Options{MinTime: *mintime, Filter: *bench}
	if *quick {
		opts.MinTime = 30 * time.Millisecond
	}

	if *httpAddr != "" {
		// Expose run progress (and pprof for profiling a long benchmark
		// run) over the unified telemetry endpoint.
		reg := telemetry.NewRegistry()
		benchesDone := reg.Counter("benchrun/benchmarks_done")
		opts.AfterEach = func(string) { benchesDone.Inc() }
		srv, err := telemetry.Serve(*httpAddr, reg)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "telemetry: serving /metrics, /debug/vars, /debug/pprof on %s\n", srv.Addr)
	}

	fmt.Fprintf(out, "benchrun: measuring %s/benchmark, GOMAXPROCS=%d\n", opts.MinTime, runtime.GOMAXPROCS(0))
	rep := benchreport.Run(benchreport.DefaultSpecs(*bench), opts)

	if *baseline != "" {
		f, err := os.Open(*baseline)
		if err != nil {
			return fmt.Errorf("benchrun: opening baseline: %w", err)
		}
		base, err := benchreport.ReadJSON(f)
		f.Close()
		if err != nil {
			return err
		}
		rep.ApplyBaseline(base.BaselineNsPerOp(), "baseline "+filepath.Base(*baseline))
	}
	if *note != "" {
		if rep.Notes != "" {
			rep.Notes += "; "
		}
		rep.Notes += *note
	}

	rows := [][]string{{"benchmark", "ns/op", "allocs/op", "examples/sec"}}
	for _, b := range rep.Benchmarks {
		exs := ""
		if b.ExamplesPerSec > 0 {
			exs = metrics.F(b.ExamplesPerSec)
		}
		rows = append(rows, []string{b.Name, metrics.F(b.NsPerOp), metrics.F(b.AllocsPerOp), exs})
	}
	fmt.Fprint(out, metrics.Table(rows))

	if len(rep.Speedups) > 0 {
		keys := make([]string, 0, len(rep.Speedups))
		for k := range rep.Speedups {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintln(out, "\nspeedups:")
		for _, k := range keys {
			fmt.Fprintf(out, "  %-32s %.2fx\n", k, rep.Speedups[k])
		}
	}

	path := filepath.Join(*dir, rep.Filename())
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("benchrun: creating report: %w", err)
	}
	defer f.Close()
	if err := rep.WriteJSON(f); err != nil {
		return err
	}
	fmt.Fprintf(out, "\nreport written to %s\n", path)
	return nil
}

// runCompare is the regression gate: diff two committed reports under
// the default tolerance policy and fail (non-zero exit) on regression.
// The spec "latest" (optionally "latest:<dir>") selects the two newest
// committed BENCH_*.json reports automatically — the timestamped
// filenames sort chronologically, so no mtime inspection is needed.
func runCompare(spec string, out io.Writer) error {
	var oldPath, newPath string
	if spec == "latest" || strings.HasPrefix(spec, "latest:") {
		dir := strings.TrimPrefix(spec, "latest")
		dir = strings.TrimPrefix(dir, ":")
		if dir == "" {
			dir = "."
		}
		reports, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
		if err != nil {
			return err
		}
		if len(reports) < 2 {
			return fmt.Errorf("benchrun: -compare latest needs at least 2 BENCH_*.json reports in %s, found %d", dir, len(reports))
		}
		sort.Strings(reports)
		oldPath, newPath = reports[len(reports)-2], reports[len(reports)-1]
		fmt.Fprintf(out, "comparing %s -> %s\n", filepath.Base(oldPath), filepath.Base(newPath))
	} else {
		var ok bool
		oldPath, newPath, ok = strings.Cut(spec, ",")
		if !ok || oldPath == "" || newPath == "" {
			return fmt.Errorf("benchrun: -compare wants old.json,new.json or \"latest\", got %q", spec)
		}
	}
	d, err := benchreport.CompareFiles(oldPath, newPath, benchreport.DefaultTolerance())
	if err != nil {
		return err
	}
	fmt.Fprint(out, d.Render())
	if d.Regressed() {
		return fmt.Errorf("benchrun: %d benchmark(s) regressed past tolerance", len(d.Regressions))
	}
	return nil
}

// runTrend renders the perf trajectory across every committed
// BENCH_*.json report in dir: per-benchmark examples/sec over time as a
// sparkline, plus the worst adjacent-report drop. Informational only —
// the gate is -compare, which diffs a single pair under tolerance; the
// trend view exists to spot slow drift that stays inside each
// individual diff's noise floor.
func runTrend(dir string, out io.Writer) error {
	reports, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return err
	}
	if len(reports) < 2 {
		return fmt.Errorf("benchrun: -trend needs at least 2 BENCH_*.json reports in %s, found %d", dir, len(reports))
	}
	sort.Strings(reports) // timestamped names sort chronologically
	names := make([]string, len(reports))
	series := make(map[string][]float64) // benchmark -> examples/sec per report (0 = absent)
	var order []string
	for i, path := range reports {
		names[i] = filepath.Base(path)
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		rep, err := benchreport.ReadJSON(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("benchrun: reading %s: %w", path, err)
		}
		for _, b := range rep.Benchmarks {
			if b.ExamplesPerSec <= 0 {
				continue
			}
			if _, ok := series[b.Name]; !ok {
				order = append(order, b.Name)
				series[b.Name] = make([]float64, len(reports))
			}
			series[b.Name][i] = b.ExamplesPerSec
		}
	}

	fmt.Fprintf(out, "bench trend: %d reports, %s -> %s (examples/sec)\n\n",
		len(reports), names[0], names[len(names)-1])
	rows := [][]string{{"benchmark", "first", "latest", "trend", "worst drop"}}
	worstName, worstPct := "", 0.0
	var worstFrom, worstTo string
	for _, name := range order {
		vals := series[name]
		var present []float64
		for _, v := range vals {
			if v > 0 {
				present = append(present, v)
			}
		}
		// Worst drop between chronologically adjacent reports that both
		// carry the benchmark (specs added mid-history skip the gap).
		drop, from, to, prev := 0.0, "", "", -1
		for i, v := range vals {
			if v <= 0 {
				continue
			}
			if prev >= 0 {
				if pct := 100 * (v - vals[prev]) / vals[prev]; pct < drop {
					drop, from, to = pct, names[prev], names[i]
				}
			}
			prev = i
		}
		dropCell := "-"
		if drop < 0 {
			dropCell = fmt.Sprintf("%.1f%%", drop)
		}
		rows = append(rows, []string{name, metrics.F(present[0]),
			metrics.F(present[len(present)-1]), metrics.Sparkline(present), dropCell})
		if drop < worstPct {
			worstName, worstPct, worstFrom, worstTo = name, drop, from, to
		}
	}
	fmt.Fprint(out, metrics.Table(rows))
	if worstName != "" {
		fmt.Fprintf(out, "\nworst step-to-step drop: %s %.1f%% (%s -> %s)\n",
			worstName, worstPct, worstFrom, worstTo)
	} else {
		fmt.Fprintln(out, "\nno adjacent-report drop anywhere: every trajectory is monotonic")
	}
	return nil
}

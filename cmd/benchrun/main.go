// Command benchrun measures the training hot path and writes a
// machine-readable BENCH_<timestamp>.json report, giving each PR a
// recorded perf trajectory (examples/sec, ns/op, allocs/op, and the
// tiled-vs-naive / fused-vs-unfused ablation speedups).
//
//	benchrun                        # full run (~1s per benchmark), report in .
//	benchrun -o reports -mintime 3s # steadier numbers, custom output dir
//	benchrun -quick                 # CI smoke mode (tens of ms per benchmark)
//	benchrun -bench gemm            # only benchmarks whose name contains "gemm"
//	benchrun -baseline BENCH_old.json  # adds <name>_vs_baseline speedups
//	benchrun -compare latest        # regression-gate the two newest reports
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/benchreport"
	"repro/internal/metrics"
	"repro/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchrun", flag.ContinueOnError)
	fs.SetOutput(out)
	dir := fs.String("o", ".", "directory for the BENCH_<timestamp>.json report")
	quick := fs.Bool("quick", false, "smoke mode: ~30ms per benchmark")
	mintime := fs.Duration("mintime", time.Second, "measurement floor per benchmark")
	bench := fs.String("bench", "", "only run benchmarks whose name contains this substring")
	baseline := fs.String("baseline", "", "prior BENCH_*.json whose ns/op become the baseline")
	compare := fs.String("compare", "", "diff two reports instead of benchmarking: old.json,new.json, or \"latest\" for the two newest BENCH_*.json; exits non-zero on regression past tolerance")
	note := fs.String("note", "", "free-form note recorded in the report")
	httpAddr := fs.String("telemetry.http", "", "serve /metrics, /debug/vars and /debug/pprof on this address while benchmarks run")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *compare != "" {
		return runCompare(*compare, out)
	}

	opts := benchreport.Options{MinTime: *mintime, Filter: *bench}
	if *quick {
		opts.MinTime = 30 * time.Millisecond
	}

	if *httpAddr != "" {
		// Expose run progress (and pprof for profiling a long benchmark
		// run) over the unified telemetry endpoint.
		reg := telemetry.NewRegistry()
		benchesDone := reg.Counter("benchrun/benchmarks_done")
		opts.AfterEach = func(string) { benchesDone.Inc() }
		srv, err := telemetry.Serve(*httpAddr, reg)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "telemetry: serving /metrics, /debug/vars, /debug/pprof on %s\n", srv.Addr)
	}

	fmt.Fprintf(out, "benchrun: measuring %s/benchmark, GOMAXPROCS=%d\n", opts.MinTime, runtime.GOMAXPROCS(0))
	rep := benchreport.Run(benchreport.DefaultSpecs(*bench), opts)

	if *baseline != "" {
		f, err := os.Open(*baseline)
		if err != nil {
			return fmt.Errorf("benchrun: opening baseline: %w", err)
		}
		base, err := benchreport.ReadJSON(f)
		f.Close()
		if err != nil {
			return err
		}
		rep.ApplyBaseline(base.BaselineNsPerOp(), "baseline "+filepath.Base(*baseline))
	}
	if *note != "" {
		if rep.Notes != "" {
			rep.Notes += "; "
		}
		rep.Notes += *note
	}

	rows := [][]string{{"benchmark", "ns/op", "allocs/op", "examples/sec"}}
	for _, b := range rep.Benchmarks {
		exs := ""
		if b.ExamplesPerSec > 0 {
			exs = metrics.F(b.ExamplesPerSec)
		}
		rows = append(rows, []string{b.Name, metrics.F(b.NsPerOp), metrics.F(b.AllocsPerOp), exs})
	}
	fmt.Fprint(out, metrics.Table(rows))

	if len(rep.Speedups) > 0 {
		keys := make([]string, 0, len(rep.Speedups))
		for k := range rep.Speedups {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintln(out, "\nspeedups:")
		for _, k := range keys {
			fmt.Fprintf(out, "  %-32s %.2fx\n", k, rep.Speedups[k])
		}
	}

	path := filepath.Join(*dir, rep.Filename())
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("benchrun: creating report: %w", err)
	}
	defer f.Close()
	if err := rep.WriteJSON(f); err != nil {
		return err
	}
	fmt.Fprintf(out, "\nreport written to %s\n", path)
	return nil
}

// runCompare is the regression gate: diff two committed reports under
// the default tolerance policy and fail (non-zero exit) on regression.
// The spec "latest" (optionally "latest:<dir>") selects the two newest
// committed BENCH_*.json reports automatically — the timestamped
// filenames sort chronologically, so no mtime inspection is needed.
func runCompare(spec string, out io.Writer) error {
	var oldPath, newPath string
	if spec == "latest" || strings.HasPrefix(spec, "latest:") {
		dir := strings.TrimPrefix(spec, "latest")
		dir = strings.TrimPrefix(dir, ":")
		if dir == "" {
			dir = "."
		}
		reports, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
		if err != nil {
			return err
		}
		if len(reports) < 2 {
			return fmt.Errorf("benchrun: -compare latest needs at least 2 BENCH_*.json reports in %s, found %d", dir, len(reports))
		}
		sort.Strings(reports)
		oldPath, newPath = reports[len(reports)-2], reports[len(reports)-1]
		fmt.Fprintf(out, "comparing %s -> %s\n", filepath.Base(oldPath), filepath.Base(newPath))
	} else {
		var ok bool
		oldPath, newPath, ok = strings.Cut(spec, ",")
		if !ok || oldPath == "" || newPath == "" {
			return fmt.Errorf("benchrun: -compare wants old.json,new.json or \"latest\", got %q", spec)
		}
	}
	d, err := benchreport.CompareFiles(oldPath, newPath, benchreport.DefaultTolerance())
	if err != nil {
		return err
	}
	fmt.Fprint(out, d.Render())
	if d.Regressed() {
		return fmt.Errorf("benchrun: %d benchmark(s) regressed past tolerance", len(d.Regressions))
	}
	return nil
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/benchreport"
)

func TestRunQuickWritesReport(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := run([]string{"-quick", "-o", dir, "-note", "smoke"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"train_step", "gemm/tiled_256", "speedups:", "gemm_tiled_vs_naive", "report written to"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("expected one BENCH_*.json in %s, got %v (%v)", dir, matches, err)
	}
	f, err := os.Open(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rep, err := benchreport.ReadJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) == 0 || rep.Notes != "smoke" {
		t.Errorf("report content unexpected: %+v", rep)
	}
}

func TestRunBenchFilterAndBaseline(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := run([]string{"-quick", "-o", dir, "-bench", "hash"}, &out); err != nil {
		t.Fatal(err)
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if len(matches) != 1 {
		t.Fatalf("expected one report, got %v", matches)
	}

	// Second run using the first as baseline must report a vs-baseline
	// speedup.
	dir2 := t.TempDir()
	out.Reset()
	if err := run([]string{"-quick", "-o", dir2, "-bench", "hash", "-baseline", matches[0]}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "embedding/hash_index_vs_baseline") {
		t.Errorf("baseline speedup missing:\n%s", out.String())
	}
}

// TestTrend exercises the "-trend" trajectory view: three fixed reports
// where one benchmark dips in the middle report must surface that
// adjacent-pair drop as the worst one, and a benchmark absent from the
// oldest report must still render (specs added mid-history skip the
// gap rather than faking a drop from zero).
func TestTrend(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := run([]string{"-trend", dir}, &out); err == nil {
		t.Error("-trend accepted a directory without reports")
	}
	steady := []float64{50000, 40000, 60000} // -20% dip in the middle
	for i, name := range []string{
		"BENCH_20260101T000000Z.json", "BENCH_20260102T000000Z.json", "BENCH_20260103T000000Z.json",
	} {
		rep := benchreport.Report{
			SchemaVersion: 1,
			Benchmarks: []benchreport.Result{
				{Name: "train_step", ExamplesPerSec: steady[i]},
			},
		}
		if i > 0 { // added one report into history
			rep.Benchmarks = append(rep.Benchmarks,
				benchreport.Result{Name: "hybrid_step", ExamplesPerSec: 30000})
		}
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteJSON(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	out.Reset()
	if err := run([]string{"-trend", dir}, &out); err != nil {
		t.Fatalf("trend: %v\n%s", err, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "worst step-to-step drop: train_step -20.0% (BENCH_20260101T000000Z.json -> BENCH_20260102T000000Z.json)") {
		t.Errorf("worst drop not attributed to the middle dip:\n%s", s)
	}
	if !strings.Contains(s, "hybrid_step") || !strings.Contains(s, "3 reports") {
		t.Errorf("trend table incomplete:\n%s", s)
	}
}

// TestCompareLatest exercises the "-compare latest" auto-selection: two
// quick reports in one directory, the gate picks the two newest by
// timestamped filename and renders a diff.
func TestCompareLatest(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := run([]string{"-compare", "latest:" + dir}, &out); err == nil {
		t.Error("-compare latest accepted an empty directory")
	}
	// Two fixed reports with deterministic names: old regresses nothing.
	for i, name := range []string{"BENCH_20260101T000000Z.json", "BENCH_20260102T000000Z.json"} {
		rep := benchreport.Report{
			SchemaVersion: 1,
			Benchmarks: []benchreport.Result{
				{Name: "train_step", NsPerOp: 1000 - float64(i)*10},
			},
		}
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteJSON(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	out.Reset()
	if err := run([]string{"-compare", "latest:" + dir}, &out); err != nil {
		t.Fatalf("compare latest: %v\n%s", err, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "BENCH_20260101T000000Z.json -> BENCH_20260102T000000Z.json") {
		t.Errorf("did not pick the two newest reports:\n%s", s)
	}
	if !strings.Contains(s, "train_step") {
		t.Errorf("diff missing benchmark row:\n%s", s)
	}
}

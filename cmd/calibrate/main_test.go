package main

import (
	"strings"
	"testing"

	"repro/internal/perfmodel"
)

func TestRunTinySearch(t *testing.T) {
	var out, progress strings.Builder
	if err := run([]string{"-iters", "3", "-refine", "3", "-seed", "1"}, &out, &progress); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fitted calibration", "GPUGemmEff", "NVMRandEff", "tableIII.M1prod"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
	// Progress stays off stdout so the constants block redirects cleanly.
	if strings.Contains(out.String(), "after random search") {
		t.Error("search progress leaked into the paste-able output")
	}
	if !strings.Contains(progress.String(), "after refinement") {
		t.Error("progress writer saw no progress")
	}
}

func TestEvaluateFiniteLoss(t *testing.T) {
	// The anchor evaluation must stay well-defined for the shipped
	// defaults: every target produces a finite modeled value.
	loss, results := evaluate(perfmodel.DefaultCalibration())
	if loss < 0 {
		t.Errorf("negative loss %v", loss)
	}
	if len(results) == 0 {
		t.Fatal("no targets evaluated")
	}
}

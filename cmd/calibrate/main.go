// Command calibrate fits the perfmodel Calibration constants against the
// paper's reported anchors (Fig 10 ratio grid, Table III, Fig 11/12/14
// shapes) by randomized search followed by local refinement, and prints
// the best constants as Go source plus a per-target comparison table.
//
// The fit is run once; its output is baked into
// perfmodel.DefaultCalibration. Re-run after structural model changes:
//
//	go run ./cmd/calibrate -iters 40000
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/perfmodel"
	"repro/internal/placement"
	"repro/internal/workload"
	"repro/internal/xrand"
)

type param struct {
	name     string
	lo, hi   float64
	logScale bool
	get      func(*perfmodel.Calibration) *float64
}

func params() []param {
	return []param{
		{"GPUGemmEff", 0.35, 0.75, false, func(c *perfmodel.Calibration) *float64 { return &c.GPUGemmEff }},
		{"CPUGemmEff", 0.2, 0.7, false, func(c *perfmodel.Calibration) *float64 { return &c.CPUGemmEff }},
		{"BatchEffHalf", 16, 512, true, func(c *perfmodel.Calibration) *float64 { return &c.BatchEffHalf }},
		{"GPURandEff", 0.08, 0.7, false, func(c *perfmodel.Calibration) *float64 { return &c.GPURandEff }},
		{"CPURandEff", 0.15, 0.45, false, func(c *perfmodel.Calibration) *float64 { return &c.CPURandEff }},
		{"AllToAllSpread", 0.0, 1.5, false, func(c *perfmodel.Calibration) *float64 { return &c.AllToAllSpread }},
		{"KernelLaunchSec", 2e-6, 2e-5, true, func(c *perfmodel.Calibration) *float64 { return &c.KernelLaunchSec }},
		{"GPUFixedSec", 2e-4, 4e-3, true, func(c *perfmodel.Calibration) *float64 { return &c.GPUFixedSec }},
		{"CPUFixedSec", 1e-4, 1e-3, true, func(c *perfmodel.Calibration) *float64 { return &c.CPUFixedSec }},
		{"HostCopyBWPerSocket", 1e9, 1e10, true, func(c *perfmodel.Calibration) *float64 { return &c.HostCopyBWPerSocket }},
		{"HostStageBWPerSocket", 1e9, 2e10, true, func(c *perfmodel.Calibration) *float64 { return &c.HostStageBWPerSocket }},
		{"EASGDPeriodIters", 8, 128, true, func(c *perfmodel.Calibration) *float64 { return &c.EASGDPeriodIters }},
		{"CacheSlope", 0, 2.0, false, func(c *perfmodel.Calibration) *float64 { return &c.CacheSlope }},
		{"PSHandleBWPerNode", 8e8, 5e9, true, func(c *perfmodel.Calibration) *float64 { return &c.PSHandleBWPerNode }},
		{"RemoteRTTSec", 1e-4, 3e-3, true, func(c *perfmodel.Calibration) *float64 { return &c.RemoteRTTSec }},
		{"PSDRAMEff", 0.02, 0.15, false, func(c *perfmodel.Calibration) *float64 { return &c.PSDRAMEff }},
		{"HostBounceFactor", 1, 8, false, func(c *perfmodel.Calibration) *float64 { return &c.HostBounceFactor }},
	}
}

type targetResult struct {
	name           string
	paper, modeled float64
	weight         float64
}

// evaluate runs the model against every anchor and returns weighted
// squared log errors plus the per-target values.
func evaluate(cal perfmodel.Calibration) (loss float64, results []targetResult) {
	cpu := hw.DualSocketCPU()
	bb := hw.BigBasin()
	zion := hw.Zion()
	T := perfmodel.PaperTargets

	add := func(name string, paper, modeled, weight float64) {
		results = append(results, targetResult{name, paper, modeled, weight})
		if paper > 0 && modeled > 0 && !math.IsInf(modeled, 0) && !math.IsNaN(modeled) {
			d := math.Log(modeled / paper)
			loss += weight * d * d
		} else {
			loss += weight * 25 // hard penalty for broken predictions
		}
	}

	cpuScenario := func(cfg core.Config, batch, trainers, sparsePS, densePS int) float64 {
		bd, err := perfmodel.Estimate(perfmodel.Scenario{
			Cfg: cfg, Platform: cpu, Batch: batch,
			NumTrainers: trainers, NumSparsePS: sparsePS, NumDensePS: densePS, Cal: cal})
		if err != nil {
			return math.NaN()
		}
		return bd.Throughput
	}
	gpuScenario := func(cfg core.Config, platform hw.Platform, batch int, strat placement.Strategy, remotePS int) float64 {
		plan, err := placement.Fit(cfg, platform, strat, remotePS)
		if err != nil {
			return math.NaN()
		}
		bd, err := perfmodel.Estimate(perfmodel.Scenario{
			Cfg: cfg, Platform: platform, Batch: batch, Plan: plan, Cal: cal})
		if err != nil {
			return math.NaN()
		}
		return bd.Throughput
	}

	// Fig 10: GPU/CPU ratio grid.
	for i, d := range workload.SweepDense {
		for j, sp := range workload.SweepSparse {
			cfg := workload.DefaultTestSuite(d, sp)
			g := gpuScenario(cfg, bb, 1600, placement.GPUMemory, 0)
			c := cpuScenario(cfg, 200, 1, 1, 1)
			w := 1.0
			if sp >= 64 {
				w = 2.0
			}
			add(fmt.Sprintf("fig10[%d-%d]", d, sp), T.Fig10Ratio[i][j], g/c, w)
		}
	}

	// Fig 10 dense-axis trend: the GPU advantage must grow with dense
	// features (paper: ratio(4096,s)/ratio(64,s)).
	for j, sp := range workload.SweepSparse {
		lo := workload.DefaultTestSuite(64, sp)
		hi := workload.DefaultTestSuite(4096, sp)
		rLo := gpuScenario(lo, bb, 1600, placement.GPUMemory, 0) / cpuScenario(lo, 200, 1, 1, 1)
		rHi := gpuScenario(hi, bb, 1600, placement.GPUMemory, 0) / cpuScenario(hi, 200, 1, 1, 1)
		add(fmt.Sprintf("fig10.trend[s=%d]", sp), T.Fig10Ratio[3][j]/T.Fig10Ratio[0][j], rHi/rLo, 2)
	}

	// Table III ratios using the paper's setups and placements.
	prods := workload.ProdModels()
	strats := []placement.Strategy{placement.GPUMemory, placement.GPUMemory, placement.RemoteCPU}
	remotes := []int{0, 0, 8}
	for k, cfg := range prods {
		setup, _ := workload.ProdSetup(cfg.Name)
		c := cpuScenario(cfg, setup.TrainerBatch, setup.Trainers, setup.SparsePS, setup.DensePS)
		g := gpuScenario(cfg, bb, setup.OptimalGPUBatch, strats[k], remotes[k])
		add("tableIII."+cfg.Name, T.TableIIIThroughput[k], g/c, 6)
	}

	// Fig 14: M2prod placements normalized to Big Basin RemoteCPU.
	m2 := workload.M2Prod()
	setup2, _ := workload.ProdSetup("M2prod")
	base := gpuScenario(m2, bb, setup2.OptimalGPUBatch, placement.RemoteCPU, 8)
	for k, strat := range []placement.Strategy{placement.GPUMemory, placement.SystemMemory, placement.RemoteCPU} {
		v := gpuScenario(m2, bb, setup2.OptimalGPUBatch, strat, 8)
		add(fmt.Sprintf("fig14.bb.%v", strat), T.Fig14BigBasin[k], v/base, 2)
		v = gpuScenario(m2, zion, setup2.OptimalGPUBatch, strat, 8)
		add(fmt.Sprintf("fig14.zion.%v", strat), T.Fig14Zion[k], v/base, 2)
	}

	// Fig 12: hash-size decline, config dense=1024 sparse=16.
	lowHash := workload.TestSuiteConfig(1024, 16, 512, 3, 100000)
	highHash := workload.TestSuiteConfig(1024, 16, 512, 3, 25600000)
	gLow := gpuScenario(lowHash, bb, 1600, placement.GPUMemory, 0)
	gHigh := gpuScenario(highHash, bb, 1600, placement.GPUMemory, 0)
	add("fig12.gpuDecline", T.Fig12GPUDecline, gLow/gHigh, 2)
	cLow := cpuScenario(lowHash, 200, 1, 1, 1)
	cHigh := cpuScenario(highHash, 200, 1, 1, 1)
	add("fig12.cpuFlat", T.Fig12CPUDecline, cLow/cHigh, 2)

	// Fig 11: batch scaling.
	mid := workload.DefaultTestSuite(1024, 16)
	g400 := gpuScenario(mid, bb, 400, placement.GPUMemory, 0)
	g3200 := gpuScenario(mid, bb, 3200, placement.GPUMemory, 0)
	add("fig11.gpuScale", T.Fig11GPUScaling, g3200/g400, 1)
	c100 := cpuScenario(mid, 100, 1, 1, 1)
	c400 := cpuScenario(mid, 400, 1, 1, 1)
	add("fig11.cpuScale", T.Fig11CPUScaling, c400/c100, 2)

	// Fig 1 ordering: Zion must beat Big Basin for the production
	// models under each platform's best paper placement.
	for _, cfg := range prods {
		bbBest, zionBest := math.Inf(-1), math.Inf(-1)
		for _, strat := range []placement.Strategy{placement.GPUMemory, placement.SystemMemory, placement.RemoteCPU} {
			if v := gpuScenario(cfg, bb, 1600, strat, 8); !math.IsNaN(v) && v > bbBest {
				bbBest = v
			}
			if v := gpuScenario(cfg, zion, 1600, strat, 8); !math.IsNaN(v) && v > zionBest {
				zionBest = v
			}
		}
		r := zionBest / bbBest
		switch cfg.Name {
		case "M3prod":
			// Fig 1's strongest claim: Zion far ahead when tables
			// exceed Big Basin's GPU memory.
			if r < 1.5 {
				loss += 5 * math.Pow(math.Log(1.5/r), 2)
			}
		default:
			// Fig 1 vs Fig 14 disagree slightly for M1/M2; only
			// penalize Zion falling clearly behind.
			if r < 0.85 {
				loss += 3 * math.Pow(math.Log(0.85/r), 2)
			}
		}
		results = append(results, targetResult{"fig1.zion_vs_bb." + cfg.Name, 1, r, 3})
	}

	return loss, results
}

func sample(rng *xrand.RNG, base perfmodel.Calibration) perfmodel.Calibration {
	c := base
	for _, p := range params() {
		v := p.get(&c)
		if p.logScale {
			*v = p.lo * math.Exp(rng.Float64()*math.Log(p.hi/p.lo))
		} else {
			*v = p.lo + rng.Float64()*(p.hi-p.lo)
		}
	}
	return c
}

func perturb(rng *xrand.RNG, base perfmodel.Calibration, scale float64) perfmodel.Calibration {
	c := base
	for _, p := range params() {
		v := p.get(&c)
		f := math.Exp(rng.NormMS(0, scale))
		*v *= f
		if *v < p.lo {
			*v = p.lo
		}
		if *v > p.hi {
			*v = p.hi
		}
	}
	return c
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run writes the paste-able calibration block to out and search progress
// to errOut, so `calibrate > cal.txt` captures only the constants.
func run(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("calibrate", flag.ContinueOnError)
	fs.SetOutput(errOut)
	iters := fs.Int("iters", 30000, "random search iterations")
	refine := fs.Int("refine", 20000, "local refinement iterations")
	seed := fs.Int64("seed", 7, "search seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	rng := xrand.New(*seed)
	best := perfmodel.DefaultCalibration()
	bestLoss, _ := evaluate(best)
	fmt.Fprintf(errOut, "starting loss (current defaults): %.4f\n", bestLoss)

	for i := 0; i < *iters; i++ {
		c := sample(rng, best)
		if l, _ := evaluate(c); l < bestLoss {
			bestLoss, best = l, c
		}
	}
	fmt.Fprintf(errOut, "after random search: %.4f\n", bestLoss)
	for i := 0; i < *refine; i++ {
		scale := 0.15
		if i > *refine/2 {
			scale = 0.05
		}
		c := perturb(rng, best, scale)
		if l, _ := evaluate(c); l < bestLoss {
			bestLoss, best = l, c
		}
	}
	fmt.Fprintf(errOut, "after refinement: %.4f\n", bestLoss)

	_, results := evaluate(best)
	fmt.Fprintln(out, "// Fitted calibration (paste into DefaultCalibration):")
	fmt.Fprintf(out, "GPUGemmEff:          %.4g,\n", best.GPUGemmEff)
	fmt.Fprintf(out, "CPUGemmEff:          %.4g,\n", best.CPUGemmEff)
	fmt.Fprintf(out, "BatchEffHalf:        %.4g,\n", best.BatchEffHalf)
	fmt.Fprintf(out, "GPURandEff:          %.4g,\n", best.GPURandEff)
	fmt.Fprintf(out, "CPURandEff:          %.4g,\n", best.CPURandEff)
	fmt.Fprintf(out, "NVLinkEff:           %.4g,\n", best.NVLinkEff)
	fmt.Fprintf(out, "PCIeEff:             %.4g,\n", best.PCIeEff)
	fmt.Fprintf(out, "NetEff:              %.4g,\n", best.NetEff)
	fmt.Fprintf(out, "AllToAllSpread:      %.4g,\n", best.AllToAllSpread)
	fmt.Fprintf(out, "KernelLaunchSec:     %.4g,\n", best.KernelLaunchSec)
	fmt.Fprintf(out, "GPUFixedSec:         %.4g,\n", best.GPUFixedSec)
	fmt.Fprintf(out, "CPUFixedSec:         %.4g,\n", best.CPUFixedSec)
	fmt.Fprintf(out, "HogwildEff:          %.4g,\n", best.HogwildEff)
	fmt.Fprintf(out, "CacheBatch:          %.4g,\n", best.CacheBatch)
	fmt.Fprintf(out, "HostCopyBWPerSocket: %.4g,\n", best.HostCopyBWPerSocket)
	fmt.Fprintf(out, "HostStageBWPerSocket: %.4g,\n", best.HostStageBWPerSocket)
	fmt.Fprintf(out, "EASGDPeriodIters:    %.4g,\n", best.EASGDPeriodIters)
	fmt.Fprintf(out, "EmbedFwdBwdFactor:   %.4g,\n", best.EmbedFwdBwdFactor)
	fmt.Fprintf(out, "CacheSlope:          %.4g,\n", best.CacheSlope)
	fmt.Fprintf(out, "CacheRefBytes:       %.4g,\n", best.CacheRefBytes)
	fmt.Fprintf(out, "PSHandleBWPerNode:   %.4g,\n", best.PSHandleBWPerNode)
	fmt.Fprintf(out, "RemoteRTTSec:        %.4g,\n", best.RemoteRTTSec)
	fmt.Fprintf(out, "PSDRAMEff:           %.4g,\n", best.PSDRAMEff)
	fmt.Fprintf(out, "HostBounceFactor:    %.4g,\n", best.HostBounceFactor)
	fmt.Fprintf(out, "NVMRandEff:          %.4g,\n", best.NVMRandEff)
	fmt.Fprintln(out)
	fmt.Fprintf(out, "%-24s %10s %10s %8s\n", "target", "paper", "model", "ratio")
	for _, r := range results {
		fmt.Fprintf(out, "%-24s %10.3f %10.3f %8.2f\n", r.name, r.paper, r.modeled, r.modeled/r.paper)
	}
	return nil
}

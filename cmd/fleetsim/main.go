// Command fleetsim runs the fleet-scale characterizations: utilization
// distributions across many training runs (Fig 5) and server-count
// histograms (Fig 9).
//
//	fleetsim -runs 200
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/fleet"
	"repro/internal/metrics"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fleetsim", flag.ContinueOnError)
	fs.SetOutput(out)
	runs := fs.Int("runs", 100, "simulated training runs for the utilization study")
	workflows := fs.Int("workflows", 3000, "sampled workflows for the server-count study")
	seed := fs.Int64("seed", 1, "seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	study := fleet.DefaultUtilizationStudy(*runs, *seed)
	fmt.Fprintf(out, "Fig 5 study: %d runs at %d trainers / %d sparse PS\n\n",
		*runs, study.Trainers, study.SparsePS)
	d, err := study.Run()
	if err != nil {
		return err
	}
	fmt.Fprintln(out, metrics.Table(d.Summaries()))

	th, ph, p95 := fleet.ServerCountStudy(*workflows, *seed+1)
	labels := make([]string, len(th.Counts))
	for i := range labels {
		labels[i] = fmt.Sprintf("%2.0f", th.BinCenter(i))
	}
	fmt.Fprintf(out, "Fig 9: trainer counts over %d workflows (p95 = %.0f):\n", *workflows, p95)
	fmt.Fprintln(out, metrics.BarChart(labels, th.Fractions(), 40))
	fmt.Fprintln(out, "parameter-server counts:")
	fmt.Fprintln(out, metrics.BarChart(labels, ph.Fractions(), 40))
	return nil
}

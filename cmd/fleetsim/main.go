// Command fleetsim runs the fleet-scale characterizations: utilization
// distributions across many training runs (Fig 5) and server-count
// histograms (Fig 9).
//
//	fleetsim -runs 200
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/fleet"
	"repro/internal/metrics"
)

func main() {
	runs := flag.Int("runs", 100, "simulated training runs for the utilization study")
	workflows := flag.Int("workflows", 3000, "sampled workflows for the server-count study")
	seed := flag.Int64("seed", 1, "seed")
	flag.Parse()

	study := fleet.DefaultUtilizationStudy(*runs, *seed)
	fmt.Printf("Fig 5 study: %d runs at %d trainers / %d sparse PS\n\n",
		*runs, study.Trainers, study.SparsePS)
	d, err := study.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(metrics.Table(d.Summaries()))

	th, ph, p95 := fleet.ServerCountStudy(*workflows, *seed+1)
	labels := make([]string, len(th.Counts))
	for i := range labels {
		labels[i] = fmt.Sprintf("%2.0f", th.BinCenter(i))
	}
	fmt.Printf("Fig 9: trainer counts over %d workflows (p95 = %.0f):\n", *workflows, p95)
	fmt.Println(metrics.BarChart(labels, th.Fractions(), 40))
	fmt.Println("parameter-server counts:")
	fmt.Println(metrics.BarChart(labels, ph.Fractions(), 40))
}

package main

import (
	"strings"
	"testing"
)

func TestRunSmallStudy(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-runs", "5", "-workflows", "50"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fig 5", "Fig 9", "parameter-server counts"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

package main

import (
	"strings"
	"testing"
)

func TestRunSweepM3(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-model", "M3prod", "-batch", "800"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"hierarchy of BigBasin", "HBM", "hot-row cache",
		"cache sweep", "bottleneck", "vs flat"} {
		if !strings.Contains(s, want) {
			t.Errorf("sweep output missing %q:\n%s", want, s)
		}
	}
}

func TestRunTestSuiteModel(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-model", "test", "-dense", "64", "-sparse", "4",
		"-hash", "100000", "-batch", "400", "-fractions", "-1,0.1"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "cache sweep") {
		t.Errorf("output missing sweep:\n%s", out.String())
	}
}

func TestRunReplayMode(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-replay", "-batches", "5", "-capacities", "100,1000"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"lru", "lfu", "clock", "analytic"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("replay output missing %q", want)
		}
	}
}

func TestRunUnknownModel(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-model", "M9prod"}, &out); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestRunRejectsDegenerateSweepInputs(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-fractions", "garbage"}, &out); err == nil {
		t.Error("unparseable fractions accepted")
	}
	if err := run([]string{"-replay", "-capacities", "0,-5"}, &out); err == nil {
		t.Error("non-positive capacities accepted")
	}
}

// Command memtier explores the tiered embedding-memory subsystem: it
// prints a platform's memory hierarchy, stages a model's tables across
// it, and emits the MTrainS-style capacity -> hit rate -> throughput
// sweep for the HBM hot-row cache.
//
//	memtier -model M3prod -platform BigBasin -batch 800
//	memtier -model test -dense 1024 -sparse 64 -hash 25600000
//	memtier -replay -batches 40 -capacities 500,2000,8000
//
// The default mode is analytic (power-law hit rates, perfmodel pricing);
// -replay records a synthetic trace and measures every eviction policy
// (LRU, LFU, CLOCK) against the analytic estimate.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/hw"
	"repro/internal/memtier"
	"repro/internal/metrics"
	"repro/internal/perfmodel"
	"repro/internal/placement"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("memtier", flag.ContinueOnError)
	fs.SetOutput(out)
	model := fs.String("model", "M3prod", "model: M1prod, M2prod, M3prod, or 'test'")
	dense := fs.Int("dense", 1024, "dense features for -model test")
	sparse := fs.Int("sparse", 64, "sparse features for -model test")
	hash := fs.Int("hash", workload.TestSuiteHashSize, "hash size per table for -model test")
	platformName := fs.String("platform", "BigBasin", "platform name")
	batch := fs.Int("batch", 800, "global batch size")
	fractions := fs.String("fractions", "-1,0.025,0.05,0.1,0.2,0.3", "cache fractions to sweep (-1 = cache off)")
	replay := fs.Bool("replay", false, "replay a recorded synthetic trace through every eviction policy")
	batches := fs.Int("batches", 40, "batches to record in -replay mode")
	capacities := fs.String("capacities", "500,2000,8000,32000", "cache row capacities in -replay mode")
	seed := fs.Int64("seed", 1, "seed for -replay trace generation")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *replay {
		return runReplay(out, *batches, *capacities, *seed)
	}

	cfg, err := resolveModel(*model, *dense, *sparse, *hash)
	if err != nil {
		return err
	}
	platform, err := hw.ByName(*platformName)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "model: %s (%s embeddings)\n", cfg.Name, core.HumanBytes(cfg.EmbeddingBytes()))
	fmt.Fprintf(out, "hierarchy of %s:\n", platform.Name)
	for _, tier := range platform.MemoryTiers(0) {
		fmt.Fprintf(out, "  %s (usable %s)\n", tier.String(), core.HumanBytes(memtier.UsableBytes(tier)))
	}

	plan, err := placement.FitTiered(cfg, platform, placement.TieredOptions{})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\ndefault tiered assignment:\n%s\n", plan.Tiered.String())

	// Flat baseline: the fastest paper placement.
	var baseline float64
	baseName := "none feasible"
	if bp, bd, err := perfmodel.BestPlacementAmong(cfg, platform, *batch, perfmodel.DefaultCalibration(),
		[]placement.Strategy{placement.GPUMemory, placement.SystemMemory, placement.RemoteCPU}); err == nil {
		baseline = bd.Throughput
		baseName = bp.Strategy.String()
	}

	fracs, err := splitFloats(*fractions)
	if err != nil {
		return err
	}
	rows := [][]string{{"cache frac", "cache rows", "est hit rate", "HBM lookup frac",
		"examples/s", "vs flat", "bottleneck"}}
	for _, f := range fracs {
		if f == 0 {
			// AssignOptions treats 0 as "use the default"; on the CLI a
			// literal 0 means no cache.
			f = -1
		}
		p, err := placement.FitTiered(cfg, platform, placement.TieredOptions{
			Assign: memtier.AssignOptions{CacheFraction: f},
		})
		if err != nil {
			return err
		}
		bd, err := perfmodel.Estimate(perfmodel.Scenario{Cfg: cfg, Platform: platform, Batch: *batch, Plan: p})
		if err != nil {
			return err
		}
		label := fmt.Sprintf("%.1f%%", 100*f)
		if f < 0 {
			label = "off"
		}
		vs := "-"
		if baseline > 0 {
			vs = metrics.F2(bd.Throughput / baseline)
		}
		rows = append(rows, []string{
			label,
			fmt.Sprintf("%d", p.Tiered.CacheRows),
			metrics.F2(p.Tiered.CacheHitRate),
			metrics.F2(p.HotFraction),
			fmt.Sprintf("%.0f", bd.Throughput),
			vs,
			bd.Bottleneck,
		})
	}
	fmt.Fprintf(out, "cache sweep at batch %d (flat baseline: %s):\n\n%s",
		*batch, baseName, metrics.Table(rows))
	return nil
}

func runReplay(out io.Writer, batches int, capacities string, seed int64) error {
	cfg := core.Config{
		Name:          "memtier-replay",
		DenseFeatures: 32,
		Sparse:        core.UniformSparse(8, 50000, 6),
		EmbeddingDim:  16,
		BottomMLP:     []int{32},
		TopMLP:        []int{32},
		Interaction:   core.Concat,
	}
	gen := data.NewGenerator(cfg, seed, data.DefaultOptions())
	col := trace.NewCollector(cfg)
	var stream []*core.MiniBatch
	for i := 0; i < batches; i++ {
		b := gen.NextBatch(64)
		stream = append(stream, b)
		col.RecordBatch(b)
	}
	demand := memtier.DemandFromProfile(cfg.TableStats(), col.RowFrequencies(), 0)
	caps, err := splitInts(capacities)
	if err != nil {
		return err
	}
	rows := [][]string{append([]string{"cache rows"}, append(memtier.PolicyNames(), "analytic")...)}
	for _, c := range caps {
		row := []string{fmt.Sprintf("%d", c)}
		for _, name := range memtier.PolicyNames() {
			p, err := memtier.NewPolicy(name, c)
			if err != nil {
				return err
			}
			row = append(row, metrics.F2(memtier.Replay(p, stream)))
		}
		row = append(row, metrics.F2(memtier.EstimateHitRate(demand, c)))
		rows = append(rows, row)
	}
	fmt.Fprintf(out, "replayed %d batches of %s through every policy:\n\n%s",
		batches, cfg.Name, metrics.Table(rows))
	return nil
}

func resolveModel(name string, dense, sparse, hash int) (core.Config, error) {
	if name == "test" {
		return workload.TestSuiteConfig(dense, sparse, 512, 3, hash), nil
	}
	for _, cfg := range workload.ProdModels() {
		if cfg.Name == name {
			return cfg, nil
		}
	}
	return core.Config{}, fmt.Errorf("memtier: unknown model %q (have M1prod, M2prod, M3prod, test)", name)
}

func splitFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("memtier: bad cache fraction %q in %q", part, s)
		}
		out = append(out, v)
	}
	return out, nil
}

func splitInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("memtier: cache capacities must be positive integers, got %q in %q", part, s)
		}
		out = append(out, v)
	}
	return out, nil
}

// Package recsim is the public API of this repository: a pure-Go
// reproduction of "Understanding Training Efficiency of Deep Learning
// Recommendation Models at Scale" (HPCA 2021).
//
// It bundles three capabilities:
//
//   - a real DLRM training stack (models, embedding tables, optimizers,
//     synthetic click data, single-node and distributed trainers);
//   - an analytic + discrete-event performance model of the paper's
//     hardware platforms (dual-socket CPU, Big Basin, Zion) and embedding
//     placement strategies;
//   - runners that regenerate every table and figure of the paper's
//     evaluation.
//
// Quick start:
//
//	cfg := recsim.TestSuiteModel(1024, 16)
//	bd, _ := recsim.EstimateGPU(cfg, "BigBasin", 1600, recsim.PlaceGPUMemory)
//	fmt.Println(bd.Throughput, bd.Bottleneck)
package recsim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/experiments"
	"repro/internal/hw"
	"repro/internal/perfmodel"
	"repro/internal/placement"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// Re-exported core types. The aliases make the public surface explicit
// while keeping implementations in internal packages.
type (
	// ModelConfig describes a DLRM architecture (Fig 3).
	ModelConfig = core.Config
	// SparseFeature configures one categorical feature/table.
	SparseFeature = core.SparseFeature
	// Model is an instantiated DLRM with real parameters.
	Model = core.Model
	// MiniBatch is one training batch.
	MiniBatch = core.MiniBatch
	// Trainer couples a model with its optimizers.
	Trainer = core.Trainer
	// TrainerConfig holds single-node training hyper-parameters.
	TrainerConfig = core.TrainerConfig
	// EvalResult carries log loss, normalized entropy, and accuracy.
	EvalResult = core.EvalResult
	// Generator produces synthetic click batches with production-like
	// sparse statistics.
	Generator = data.Generator
	// Platform is a hardware platform from the paper's Table I.
	Platform = hw.Platform
	// PlacementStrategy selects where embedding tables live (Fig 8).
	PlacementStrategy = placement.Strategy
	// PlacementPlan is a feasibility-checked placement.
	PlacementPlan = placement.Plan
	// Breakdown is a per-iteration time/throughput/power estimate.
	Breakdown = perfmodel.Breakdown
	// ExperimentResult is one regenerated paper artifact.
	ExperimentResult = experiments.Result
	// ExperimentOptions tunes experiment execution.
	ExperimentOptions = experiments.Options
)

// Placement strategies (Fig 8).
const (
	PlaceGPUMemory    = placement.GPUMemory
	PlaceSystemMemory = placement.SystemMemory
	PlaceRemoteCPU    = placement.RemoteCPU
	PlaceHybrid       = placement.Hybrid
)

// Interaction kinds.
const (
	InteractionConcat = core.Concat
	InteractionDot    = core.DotProduct
)

// NewModel instantiates a DLRM with fresh parameters.
func NewModel(cfg ModelConfig, seed int64) *Model {
	return core.NewModel(cfg, xrand.New(seed))
}

// NewTrainer builds a single-node trainer.
func NewTrainer(m *Model, tc TrainerConfig) *Trainer { return core.NewTrainer(m, tc) }

// NewGenerator builds a deterministic synthetic data generator whose
// labels come from a planted teacher model.
func NewGenerator(cfg ModelConfig, seed int64) *Generator {
	return data.NewGenerator(cfg, seed, data.DefaultOptions())
}

// Evaluate scores a model on held-out batches.
func Evaluate(m *Model, batches []*MiniBatch) EvalResult { return core.Evaluate(m, batches) }

// Platforms returns the Table I hardware catalog.
func Platforms() []Platform { return hw.Platforms() }

// PlatformByName resolves "DualSocketCPU", "BigBasin", or "Zion".
func PlatformByName(name string) (Platform, error) { return hw.ByName(name) }

// TestSuiteModel builds the paper's §V design-space-exploration model
// with the given dense and sparse feature counts (MLP 512^3, hash 1e5).
func TestSuiteModel(dense, sparse int) ModelConfig {
	return workload.DefaultTestSuite(dense, sparse)
}

// ProductionModels returns M1prod, M2prod, and M3prod (Table II).
func ProductionModels() []ModelConfig { return workload.ProdModels() }

// FitPlacement checks whether the model fits on the platform under the
// strategy and returns the concrete plan. remotePS of 0 auto-sizes the
// remote parameter-server fleet.
func FitPlacement(cfg ModelConfig, platformName string, strategy PlacementStrategy, remotePS int) (PlacementPlan, error) {
	p, err := hw.ByName(platformName)
	if err != nil {
		return PlacementPlan{}, err
	}
	return placement.Fit(cfg, p, strategy, remotePS)
}

// EstimateGPU estimates one training iteration of the model on a GPU
// platform with the given placement.
func EstimateGPU(cfg ModelConfig, platformName string, batch int, strategy PlacementStrategy) (Breakdown, error) {
	p, err := hw.ByName(platformName)
	if err != nil {
		return Breakdown{}, err
	}
	plan, err := placement.Fit(cfg, p, strategy, 0)
	if err != nil {
		return Breakdown{}, err
	}
	return perfmodel.Estimate(perfmodel.Scenario{Cfg: cfg, Platform: p, Batch: batch, Plan: plan})
}

// EstimateCPUCluster estimates the production distributed CPU baseline
// (Fig 4) with the given topology.
func EstimateCPUCluster(cfg ModelConfig, batch, trainers, sparsePS, densePS int) (Breakdown, error) {
	return perfmodel.Estimate(perfmodel.Scenario{
		Cfg: cfg, Platform: hw.DualSocketCPU(), Batch: batch,
		NumTrainers: trainers, NumSparsePS: sparsePS, NumDensePS: densePS,
	})
}

// BestPlacement picks the fastest feasible paper placement on a platform.
func BestPlacement(cfg ModelConfig, platformName string, batch int) (PlacementPlan, Breakdown, error) {
	p, err := hw.ByName(platformName)
	if err != nil {
		return PlacementPlan{}, Breakdown{}, err
	}
	return perfmodel.BestPlacement(cfg, p, batch, perfmodel.DefaultCalibration())
}

// Experiments lists the regenerable paper artifacts.
func Experiments() []string { return experiments.IDs() }

// RunExperiment regenerates one table or figure.
func RunExperiment(id string, opt ExperimentOptions) (ExperimentResult, error) {
	return experiments.Run(id, opt)
}

// Version identifies the reproduction release.
const Version = "1.0.0"

// Describe returns a one-line summary of a model config.
func Describe(cfg ModelConfig) string {
	return fmt.Sprintf("%s: %d dense, %d sparse, %s embeddings, %.0f lookups/example",
		cfg.Name, cfg.DenseFeatures, cfg.NumSparse(),
		core.HumanBytes(cfg.EmbeddingBytes()), cfg.LookupsPerExample())
}

// Package recsim is the public API of this repository: a pure-Go
// reproduction of "Understanding Training Efficiency of Deep Learning
// Recommendation Models at Scale" (HPCA 2021).
//
// It bundles eleven capabilities:
//
//   - a real DLRM training stack (models, embedding tables, optimizers,
//     synthetic click data, single-node and distributed trainers) whose
//     hot path is allocation-free and kernel-fused: tiled GEMM variants
//     on a persistent worker pool, fused bias/ReLU epilogues, slab
//     sparse gradients, and recycled batch arenas (see DESIGN.md and
//     cmd/benchrun for the measured trajectory);
//   - a synchronous hybrid-parallel training engine (internal/hybrid on
//     internal/collective): data-parallel MLP replicas synchronized with
//     a bucketed ring all-reduce and model-parallel embedding shards
//     exchanged with all-to-all, over real in-process collectives whose
//     byte meters are validated against the analytic volumes
//     (HybridAllToAllBytes, HybridAllReduceBytes);
//   - a real data-ingestion subsystem (internal/ingest): a compact
//     sharded on-disk record format plus a staged reader pipeline —
//     parallel shard decode, bounded shuffle, RecD-style within-batch
//     sparse dedup, recycled prefetch ring with explicit backpressure —
//     feeding either trainer through BatchSource, with per-stage meters
//     (read MB/s, dedup ratio, occupancy, trainer starvation);
//   - an analytic + discrete-event performance model of the paper's
//     hardware platforms (dual-socket CPU, Big Basin, Zion) and embedding
//     placement strategies;
//   - a tiered embedding-memory subsystem (internal/memtier) that stages
//     tables across HBM / host DRAM / remote DRAM / NVM, simulates
//     hot-row caching with pluggable eviction policies (LRU, LFU, CLOCK),
//     and exploits the §III-A2 power-law access skew via the Tiered
//     placement strategy (PlaceTiered);
//   - a unified zero-allocation telemetry layer (internal/telemetry): a
//     slab-backed per-shard span tracer covering every phase of the
//     training step and ingestion pipeline, a lock-free counter/gauge
//     registry absorbing every subsystem meter, Chrome trace_event and
//     expvar/pprof exporters, and an attribution report joining observed
//     span timings against the analytic perfmodel per phase;
//   - a cluster-wide performance doctor on top of that telemetry:
//     zero-allocation log-bucketed quantile histograms on every phase
//     (p50/p95/p99/p999, mergeable across rank shards), a straggler
//     detector joining per-rank rendezvous-wait meters into an
//     imbalance index with slowest-rank attribution, per-table hot-row
//     skew summaries, a boundedness classifier (Diagnose) fusing
//     observed phases with the analytic model, and a bench-trajectory
//     regression gate diffing BENCH_*.json reports under noise-aware
//     tolerances (cmd/benchrun -compare);
//   - durable checkpoint/restore and elastic fault tolerance
//     (internal/ckpt): sharded content-hashed checkpoints (per-table
//     embedding shards, dense replica, optimizer state) under a
//     Merkle-verified manifest, SparseGrad-driven incremental deltas
//     with periodic compaction, a fault-injection seam in the
//     collectives, and a kill→restore→rejoin recovery loop whose
//     resumed loss curve is bit-identical to an uninterrupted run;
//   - mixed-precision training (internal/tensor, internal/collective):
//     bf16/fp16 embedding-table storage with fp32 master weights and
//     split-SGD row re-quantization, plus compressed collective wire
//     formats (fp16/bf16 halving and int8 per-chunk-scaled quartering
//     of the all-to-all and all-reduce payloads), validated by the
//     mixed_precision experiment against the fp32 loss baseline and
//     the dtype-aware analytic volumes;
//   - a training flight recorder (OpenFlightRecorder): a zero-allocation
//     per-step time-series ring (loss, throughput, phase/comm/wait/
//     starvation ns, straggler index) fed by both trainers, online
//     anomaly detectors (EWMA loss z-score, NaN guard, throughput dip,
//     ingest starvation, straggler-index and step-SLO crossings) that
//     localize incidents to the offending step, and trigger-dumped
//     black-box bundles — trace window, metrics snapshot, series tail,
//     doctor verdict — plus a live /timeseries endpoint and an ASCII
//     dashboard (cmd/dlrmtrain -telemetry.watch), validated by the
//     flight_recorder experiment's ±1-step localization asserts;
//   - runners that regenerate every table and figure of the paper's
//     evaluation, plus an MTrainS-style tiered-memory sweep, a
//     hybrid-parallel ranks × batch scaling study, an
//     observed-vs-predicted telemetry attribution study, and an
//     elastic-recovery study (recovery wall time, bytes restored,
//     loss-curve bit-identity across 1/2/4 ranks).
//
// Quick start:
//
//	cfg := recsim.TestSuiteModel(1024, 16)
//	bd, _ := recsim.EstimateGPU(cfg, "BigBasin", 1600, recsim.PlaceGPUMemory)
//	fmt.Println(bd.Throughput, bd.Bottleneck)
package recsim

import (
	"fmt"
	"io"
	"net/http"

	"repro/internal/benchreport"
	"repro/internal/ckpt"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/embedding"
	"repro/internal/experiments"
	"repro/internal/hw"
	"repro/internal/hybrid"
	"repro/internal/ingest"
	"repro/internal/memtier"
	"repro/internal/perfmodel"
	"repro/internal/placement"
	"repro/internal/telemetry"
	"repro/internal/tensor"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// Re-exported core types. The aliases make the public surface explicit
// while keeping implementations in internal packages.
type (
	// ModelConfig describes a DLRM architecture (Fig 3).
	ModelConfig = core.Config
	// SparseFeature configures one categorical feature/table.
	SparseFeature = core.SparseFeature
	// Model is an instantiated DLRM with real parameters.
	Model = core.Model
	// MiniBatch is one training batch.
	MiniBatch = core.MiniBatch
	// Trainer couples a model with its optimizers.
	Trainer = core.Trainer
	// TrainerConfig holds single-node training hyper-parameters.
	TrainerConfig = core.TrainerConfig
	// EvalResult carries log loss, normalized entropy, and accuracy.
	EvalResult = core.EvalResult
	// Generator produces synthetic click batches with production-like
	// sparse statistics.
	Generator = data.Generator
	// Platform is a hardware platform from the paper's Table I.
	Platform = hw.Platform
	// PlacementStrategy selects where embedding tables live (Fig 8).
	PlacementStrategy = placement.Strategy
	// PlacementPlan is a feasibility-checked placement.
	PlacementPlan = placement.Plan
	// Breakdown is a per-iteration time/throughput/power estimate.
	Breakdown = perfmodel.Breakdown
	// ExperimentResult is one regenerated paper artifact.
	ExperimentResult = experiments.Result
	// ExperimentOptions tunes experiment execution.
	ExperimentOptions = experiments.Options
	// MemoryTier is one level of a platform's embedding memory
	// hierarchy (HBM, host DRAM, remote DRAM, NVM).
	MemoryTier = hw.MemTier
	// MemoryTierKind orders the hierarchy levels.
	MemoryTierKind = hw.MemTierKind
	// TierAssignment maps embedding tables onto the hierarchy plus the
	// HBM hot-row cache carved out of the top tier.
	TierAssignment = memtier.Assignment
	// TieredOptions tunes the Tiered placement strategy (trace profile,
	// Zipf skew, cache fraction, eviction policy).
	TieredOptions = placement.TieredOptions
	// TierAssignOptions is the memtier planner's knob set, embedded in
	// TieredOptions.Assign.
	TierAssignOptions = memtier.AssignOptions
	// CachePolicy is a pluggable row-cache eviction policy (LRU, LFU,
	// CLOCK).
	CachePolicy = memtier.Policy
	// HybridTrainer is the synchronous hybrid-parallel training engine:
	// data-parallel MLPs (ring all-reduce) + model-parallel embedding
	// shards (all-to-all) over real in-process collectives.
	HybridTrainer = hybrid.Trainer
	// HybridConfig holds the hybrid trainer's hyper-parameters (ranks,
	// optimizer, all-reduce bucketing/overlap, link model).
	HybridConfig = hybrid.Config
	// HybridStepBreakdown decomposes one synchronous step into compute /
	// all-to-all / all-reduce / exposed-comm time plus collective byte
	// meters, mirroring the paper's operator breakdown figures.
	HybridStepBreakdown = hybrid.StepBreakdown
	// EmbeddingDType selects the storage precision of embedding-table
	// lookup rows (ModelConfig.TableDType, SparseFeature.DType): fp32,
	// or bf16/fp16 replicas over fp32 master weights with split-SGD
	// row re-quantization on every optimizer update.
	EmbeddingDType = tensor.DType
	// WireFormat selects the on-the-wire encoding of the hybrid
	// trainer's collective payloads (HybridConfig.WireA2A,
	// HybridConfig.WireAllReduce): fp32 passthrough, fp16/bf16 halves,
	// or int8 per-64-element-chunk scales at 1.0625 bytes/element.
	WireFormat = collective.WireFormat
	// CollectiveLink models the wire between ranks (bandwidth + latency);
	// the zero value is infinitely fast.
	CollectiveLink = collective.Link
	// CollectiveStats are the cumulative per-operation collective meters.
	CollectiveStats = collective.Totals
	// BatchSource supplies training batches to either trainer — the seam
	// where the in-memory generator and the on-disk ingestion pipeline
	// swap under a training loop (Trainer.TrainFrom,
	// HybridTrainer.TrainFrom).
	BatchSource = core.BatchSource
	// GeneratorSource is the in-memory BatchSource over a Generator
	// (Generator.NewSource).
	GeneratorSource = data.GeneratorSource
	// IngestDataset is an opened sharded on-disk dataset (manifest +
	// shard handles).
	IngestDataset = ingest.Dataset
	// IngestManifest is a dataset's schema and shard index.
	IngestManifest = ingest.Manifest
	// IngestOptions tunes the staged reader pipeline (readers, prefetch
	// depth, shuffle window, RecD dedup, bandwidth emulation).
	IngestOptions = ingest.Options
	// IngestPipeline is the staged reader pipeline: parallel shard
	// decode → bounded shuffle → batch assembly with within-batch dedup
	// into a recycled prefetch ring. It implements BatchSource.
	IngestPipeline = ingest.Pipeline
	// IngestMeters is the pipeline's per-stage meter snapshot (read
	// MB/s, dedup ratio, ring occupancy, trainer starvation).
	IngestMeters = ingest.MeterSnapshot
	// IngestShardWriter materializes datasets shard by shard.
	IngestShardWriter = ingest.ShardWriter
	// DedupIndex is the RecD-style within-batch unique-row view of a
	// sparse bag (MiniBatch.AttachDedup builds one per feature).
	DedupIndex = embedding.DedupIndex
	// Tracer is the fixed-capacity, slab-backed span recorder behind
	// per-step phase tracing. Recording is lock- and allocation-free;
	// each shard (trainer, rank, ingest stage) is single-writer.
	Tracer = telemetry.Tracer
	// Registry is the unified lock-free counter/gauge registry every
	// subsystem meters into ("hybrid/…", "collective/…", "ingest/…").
	Registry = telemetry.Registry
	// Snapshot is a point-in-time copy of a Registry's metrics.
	Snapshot = telemetry.Snapshot
	// TraceSnapshot is a point-in-time copy of a Tracer's recorded
	// spans, exportable via WriteChromeTrace or TraceSnapshot.Timeline.
	TraceSnapshot = telemetry.TraceSnapshot
	// TraceSpan is one recorded phase interval on one shard.
	TraceSpan = telemetry.Span
	// TracePhase identifies a step/ingest phase (emb_lookup, all_to_all,
	// dense_fwd, …) in the telemetry taxonomy.
	TracePhase = telemetry.Phase
	// AttributionReport decomposes a trace into per-shard step windows,
	// per-phase exposed time, background/overlapped work, and the
	// critical-path wall time; Render joins it against an analytic
	// prediction such as PredictedPhases.
	AttributionReport = telemetry.Attribution
	// CheckpointStore is a durable checkpoint directory: sharded,
	// content-hashed full and incremental (touched-rows-only) checkpoints
	// under Merkle-sealed manifests, written atomically and verified on
	// restore.
	CheckpointStore = ckpt.Store
	// CheckpointManifest is one checkpoint's metadata: step, kind
	// (full/delta), base chain pins, model fingerprint, per-shard hashes,
	// and the Merkle root over them.
	CheckpointManifest = ckpt.Manifest
	// CheckpointSaveInfo summarizes one checkpoint write (kind, files,
	// bytes, delta rows, Merkle root, wall time).
	CheckpointSaveInfo = ckpt.SaveInfo
	// RestoreInfo summarizes one restore (chain length applied, verified
	// bytes moved, wall time).
	RestoreInfo = ckpt.RestoreInfo
	// FaultSchedule arms collective faults — rank kills, delays, failed
	// ops — at exact (rank, step) points (ParseFaultSchedule builds one
	// from "kill:1@120,delay:0@40+2ms" syntax). Fired entries stay fired,
	// so a schedule shared across a recovery rebuild does not re-strike.
	FaultSchedule = collective.FaultSchedule
	// RankError is the error every rank's Step returns when a collective
	// fault (or real rank death) aborts a synchronous step.
	RankError = collective.RankError
	// ElasticConfig drives RunElastic: trainer + checkpoint cadence +
	// replayable batch-stream factory + fault schedule.
	ElasticConfig = hybrid.ElasticConfig
	// ElasticResult reports an elastic run: the loss curve, recovery
	// count, recovery wall time, and verified bytes restored.
	ElasticResult = hybrid.ElasticResult
	// Histogram is the fixed-size, zero-allocation log-bucketed latency
	// histogram behind every phase's quantiles: lock-free concurrent
	// Record, mergeable across rank shards, ≤3.125% relative quantile
	// error by construction.
	Histogram = telemetry.Histogram
	// LatencyQuantiles is one histogram's rendered summary
	// (count/mean/p50/p95/p99/p999/max).
	LatencyQuantiles = telemetry.Quantiles
	// ImbalanceReport is the per-rank straggler analysis: step wall vs
	// rendezvous wait vs self time, the max/mean imbalance index, and
	// slowest-rank attribution per phase.
	ImbalanceReport = telemetry.ImbalanceReport
	// TableSkew summarizes one embedding table's hot-row access skew
	// (top-1%/top-10% lookup shares and the per-row count histogram).
	TableSkew = telemetry.TableSkew
	// DoctorInput bundles what the performance doctor fuses: trace
	// snapshot, metrics snapshot, analytic phase prediction, and skew.
	DoctorInput = telemetry.DoctorInput
	// DoctorReport is the classified run: a boundedness verdict
	// (compute-/all-to-all-/all-reduce-/reader-/checkpoint-/straggler-
	// bound), the bucket decomposition, and ranked findings.
	DoctorReport = telemetry.DoctorReport
	// Timeseries is the fixed-capacity per-step sample ring behind the
	// flight recorder: zero-allocation Append, annotated marks, JSON
	// export (/timeseries), and an ASCII sparkline Dashboard
	// (cmd/dlrmtrain -telemetry.watch).
	Timeseries = telemetry.Timeseries
	// StepSample is one step of the training time-series (loss,
	// examples, step/comm/wait/starvation ns, per-phase ns, straggler
	// index).
	StepSample = telemetry.StepSample
	// TimeseriesMark is an annotated point event on the time-series
	// (fault, rebuild, restore, detector finding).
	TimeseriesMark = telemetry.SeriesMark
	// AnomalyKind classifies an online detector finding (loss_spike,
	// loss_nan, throughput_dip, ingest_starvation, straggler,
	// slo_breach, rank_fault).
	AnomalyKind = telemetry.AnomalyKind
	// AnomalyFinding is one structured detector hit: kind, offending
	// step, severity, observed value vs baseline, detail line.
	AnomalyFinding = telemetry.AnomalyFinding
	// FlightRecorder couples the time-series ring with the online
	// anomaly detectors and, when armed with a directory, atomically
	// dumps a blackbox-<step>/ bundle (trace window, metrics snapshot,
	// series tail, doctor verdict) on every debounced finding.
	FlightRecorder = telemetry.FlightRecorder
	// FlightRecorderConfig configures OpenFlightRecorder (bundle dir,
	// ring capacity, detector thresholds, debounce, tracer/registry to
	// derive phase and meter deltas from).
	FlightRecorderConfig = telemetry.FlightRecorderConfig
	// BundleManifest is the parsed bundle.json of a black-box bundle
	// (schema "recsim-blackbox/1": trigger finding + member files).
	BundleManifest = telemetry.BundleManifest
	// TelemetryServeOption customizes ServeTelemetry (WithTimeseries).
	TelemetryServeOption = telemetry.ServeOption
	// BenchDiff is the noise-aware comparison of two BENCH_*.json
	// reports (cmd/benchrun -compare, the CI regression gate).
	BenchDiff = benchreport.Diff
	// BenchTolerance is the gate's noise policy (throughput drop %,
	// ns/op slowdown %, noise floor, alloc slack).
	BenchTolerance = benchreport.Tolerance
)

// Online anomaly detector kinds (flight-recorder findings).
const (
	AnomalyLossSpike        = telemetry.AnomalyLossSpike
	AnomalyLossNaN          = telemetry.AnomalyLossNaN
	AnomalyThroughputDip    = telemetry.AnomalyThroughputDip
	AnomalyIngestStarvation = telemetry.AnomalyIngestStarvation
	AnomalyStraggler        = telemetry.AnomalyStraggler
	AnomalySLOBreach        = telemetry.AnomalySLOBreach
	AnomalyRankFault        = telemetry.AnomalyRankFault
)

// Placement strategies (Fig 8, plus the tiered-memory extension).
const (
	PlaceGPUMemory    = placement.GPUMemory
	PlaceSystemMemory = placement.SystemMemory
	PlaceRemoteCPU    = placement.RemoteCPU
	PlaceHybrid       = placement.Hybrid
	PlaceTiered       = placement.Tiered
)

// Memory hierarchy levels.
const (
	TierHBM        = hw.TierHBM
	TierLocalDRAM  = hw.TierLocalDRAM
	TierRemoteDRAM = hw.TierRemoteDRAM
	TierNVM        = hw.TierNVM
)

// Interaction kinds.
const (
	InteractionConcat = core.Concat
	InteractionDot    = core.DotProduct
)

// NewModel instantiates a DLRM with fresh parameters.
func NewModel(cfg ModelConfig, seed int64) *Model {
	return core.NewModel(cfg, xrand.New(seed))
}

// NewTrainer builds a single-node trainer.
func NewTrainer(m *Model, tc TrainerConfig) *Trainer { return core.NewTrainer(m, tc) }

// NewGenerator builds a deterministic synthetic data generator whose
// labels come from a planted teacher model.
func NewGenerator(cfg ModelConfig, seed int64) *Generator {
	return data.NewGenerator(cfg, seed, data.DefaultOptions())
}

// Evaluate scores a model on held-out batches.
func Evaluate(m *Model, batches []*MiniBatch) EvalResult { return core.Evaluate(m, batches) }

// Platforms returns the Table I hardware catalog.
func Platforms() []Platform { return hw.Platforms() }

// PlatformByName resolves "DualSocketCPU", "BigBasin", or "Zion".
func PlatformByName(name string) (Platform, error) { return hw.ByName(name) }

// UniformSparse builds n identical sparse features, the §V test-suite
// convention (re-exported from the core config helpers).
func UniformSparse(n, hashSize int, meanPooled float64) []SparseFeature {
	return core.UniformSparse(n, hashSize, meanPooled)
}

// TestSuiteModel builds the paper's §V design-space-exploration model
// with the given dense and sparse feature counts (MLP 512^3, hash 1e5).
func TestSuiteModel(dense, sparse int) ModelConfig {
	return workload.DefaultTestSuite(dense, sparse)
}

// ProductionModels returns M1prod, M2prod, and M3prod (Table II).
func ProductionModels() []ModelConfig { return workload.ProdModels() }

// FitPlacement checks whether the model fits on the platform under the
// strategy and returns the concrete plan. remotePS of 0 auto-sizes the
// remote parameter-server fleet.
func FitPlacement(cfg ModelConfig, platformName string, strategy PlacementStrategy, remotePS int) (PlacementPlan, error) {
	p, err := hw.ByName(platformName)
	if err != nil {
		return PlacementPlan{}, err
	}
	return placement.Fit(cfg, p, strategy, remotePS)
}

// EstimateGPU estimates one training iteration of the model on a GPU
// platform with the given placement.
func EstimateGPU(cfg ModelConfig, platformName string, batch int, strategy PlacementStrategy) (Breakdown, error) {
	p, err := hw.ByName(platformName)
	if err != nil {
		return Breakdown{}, err
	}
	plan, err := placement.Fit(cfg, p, strategy, 0)
	if err != nil {
		return Breakdown{}, err
	}
	return perfmodel.Estimate(perfmodel.Scenario{Cfg: cfg, Platform: p, Batch: batch, Plan: plan})
}

// EstimateCPUCluster estimates the production distributed CPU baseline
// (Fig 4) with the given topology.
func EstimateCPUCluster(cfg ModelConfig, batch, trainers, sparsePS, densePS int) (Breakdown, error) {
	return perfmodel.Estimate(perfmodel.Scenario{
		Cfg: cfg, Platform: hw.DualSocketCPU(), Batch: batch,
		NumTrainers: trainers, NumSparsePS: sparsePS, NumDensePS: densePS,
	})
}

// BestPlacement picks the fastest feasible placement on a platform among
// the paper's three production strategies and the tiered-memory
// extension (ties break toward the paper's flat strategies).
func BestPlacement(cfg ModelConfig, platformName string, batch int) (PlacementPlan, Breakdown, error) {
	p, err := hw.ByName(platformName)
	if err != nil {
		return PlacementPlan{}, Breakdown{}, err
	}
	return perfmodel.BestPlacement(cfg, p, batch, perfmodel.DefaultCalibration())
}

// MemoryTiers returns a platform's embedding memory hierarchy ordered
// fastest to slowest; remotePS sizes the remote-DRAM tier (0 for the
// default fleet).
func MemoryTiers(platformName string, remotePS int) ([]MemoryTier, error) {
	p, err := hw.ByName(platformName)
	if err != nil {
		return nil, err
	}
	return p.MemoryTiers(remotePS), nil
}

// PlaceTieredWith builds a Tiered placement plan with explicit options —
// use FitPlacement(cfg, platform, PlaceTiered, 0) for the defaults. The
// returned plan's Tiered field carries the per-tier assignment and the
// hot-row cache estimate.
func PlaceTieredWith(cfg ModelConfig, platformName string, opts TieredOptions) (PlacementPlan, error) {
	p, err := hw.ByName(platformName)
	if err != nil {
		return PlacementPlan{}, err
	}
	return placement.FitTiered(cfg, p, opts)
}

// NewCachePolicy builds a row-cache eviction policy ("lru", "lfu",
// "clock") with the given row capacity.
func NewCachePolicy(name string, capacityRows int) (CachePolicy, error) {
	return memtier.NewPolicy(name, capacityRows)
}

// NewHybridTrainer builds the synchronous hybrid-parallel trainer: hc.Ranks
// in-process workers, each owning a table-wise embedding shard and a full
// MLP replica. Close it when done.
func NewHybridTrainer(cfg ModelConfig, hc HybridConfig) (*HybridTrainer, error) {
	return hybrid.New(cfg, hc)
}

// OpenCheckpointStore opens (creating if needed) a durable checkpoint
// directory. Both trainers save into it via SaveCheckpoint (full or
// incremental, chosen by the store's compaction policy) and resume via
// RestoreCheckpoint; every restore re-verifies shard hashes and the
// manifest Merkle root.
func OpenCheckpointStore(dir string) (*CheckpointStore, error) { return ckpt.OpenStore(dir) }

// ParseFaultSchedule parses a collective fault schedule, e.g.
// "kill:1@120,delay:0@40+2ms,fail:2@30" — kill rank 1 at step 120,
// delay rank 0 by 2ms at step 40, fail rank 2's next op at step 30. Arm
// it via HybridTrainer.SetFaults or ElasticConfig.Faults.
func ParseFaultSchedule(s string) (*FaultSchedule, error) { return collective.ParseFaultSchedule(s) }

// AsRankError extracts the failing rank from an error returned by a
// faulted hybrid step.
func AsRankError(err error) (*RankError, bool) { return collective.AsRankError(err) }

// RunElastic trains with durable checkpoints and fault-tolerant
// recovery: a rank fault rolls training back to the last checkpoint,
// rebuilds the world, and replays the deterministic stream — the
// recovered loss curve is bit-identical to an uninterrupted run.
func RunElastic(ec ElasticConfig) (*ElasticResult, error) { return hybrid.RunElastic(ec) }

// RestoreHybridTrainer builds a hybrid trainer and loads the latest
// checkpoint in store — the resume path for cold starts and the rebuild
// path after a fault (the new world may use a different rank count;
// shards are keyed by table, so rejoin re-shards deterministically).
func RestoreHybridTrainer(cfg ModelConfig, hc HybridConfig, store *CheckpointStore, fs *FaultSchedule) (*HybridTrainer, RestoreInfo, error) {
	return hybrid.Restore(cfg, hc, store, fs)
}

// HybridLink derives the collective link model from a platform's
// rank-to-rank interconnect (NVLink when present, otherwise the NIC).
func HybridLink(platformName string) (CollectiveLink, error) {
	p, err := hw.ByName(platformName)
	if err != nil {
		return CollectiveLink{}, err
	}
	return collective.LinkFor(p), nil
}

// HybridAllToAllBytes returns the analytic cross-rank bytes the hybrid
// trainer's pooled-embedding all-to-all moves per iteration (both
// directions, summed over ranks) — the number its byte meters report.
func HybridAllToAllBytes(cfg ModelConfig, batch, ranks int) float64 {
	return perfmodel.HybridAllToAllBytes(cfg, batch, ranks)
}

// HybridAllReduceBytes returns the analytic cross-rank bytes of the dense
// ring all-reduce per iteration, summed over ranks.
func HybridAllReduceBytes(cfg ModelConfig, ranks int) float64 {
	return perfmodel.HybridAllReduceBytes(cfg, ranks)
}

// HybridAllToAllBytesWire is HybridAllToAllBytes with the wire width as
// a parameter — pass WireFormat.BytesPerElem() to predict the compressed
// volume the byte meters report under that format.
func HybridAllToAllBytesWire(cfg ModelConfig, batch, ranks int, bytesPerElem float64) float64 {
	return perfmodel.HybridAllToAllBytesWire(cfg, batch, ranks, bytesPerElem)
}

// HybridAllReduceBytesWire is HybridAllReduceBytes with the wire width
// as a parameter.
func HybridAllReduceBytesWire(cfg ModelConfig, ranks int, bytesPerElem float64) float64 {
	return perfmodel.HybridAllReduceBytesWire(cfg, ranks, bytesPerElem)
}

// Embedding storage dtypes (ModelConfig.TableDType, SparseFeature.DType)
// and collective wire formats (HybridConfig.WireA2A / WireAllReduce).
const (
	DTypeFP32 = tensor.FP32
	DTypeBF16 = tensor.BF16
	DTypeFP16 = tensor.FP16

	WireFP32 = collective.WireFP32
	WireFP16 = collective.WireFP16
	WireBF16 = collective.WireBF16
	WireINT8 = collective.WireINT8
)

// ParseDType parses "fp32"/"bf16"/"fp16" (plus common aliases like
// "float32", "bfloat16", "half"; "" means fp32).
func ParseDType(s string) (EmbeddingDType, error) { return tensor.ParseDType(s) }

// ParseWireFormat parses "fp32"/"fp16"/"bf16"/"int8" ("" means fp32).
func ParseWireFormat(s string) (WireFormat, error) { return collective.ParseWireFormat(s) }

// NewShardWriter creates a dataset directory and returns a writer that
// materializes batches into the sharded ingest record format.
func NewShardWriter(dir string, cfg ModelConfig) (*IngestShardWriter, error) {
	return ingest.NewShardWriter(dir, cfg)
}

// OpenDataset opens a sharded on-disk dataset written by NewShardWriter
// (or Generator.WriteShards).
func OpenDataset(dir string) (*IngestDataset, error) { return ingest.OpenDataset(dir) }

// OpenIngestPipeline starts the staged reader pipeline over a dataset;
// the result feeds either trainer via TrainFrom. Close it when done.
func OpenIngestPipeline(ds *IngestDataset, cfg ModelConfig, opt IngestOptions) (*IngestPipeline, error) {
	return ingest.Open(ds, cfg, opt)
}

// IngestBytesPerExample returns the expected on-disk record size of one
// example of cfg — the analytic side of the reader-bandwidth roofline
// metered by IngestMeters.
func IngestBytesPerExample(cfg ModelConfig) float64 {
	return perfmodel.IngestBytesPerExample(cfg)
}

// NewTracer builds a span tracer with the given number of single-writer
// shards, each holding a ring of capacity spans (capacity <= 0 gets a
// default). Wire it to core.Trainer via SetTrace, to the hybrid trainer
// via HybridConfig.Trace, and to the ingestion pipeline via
// IngestOptions.Trace; their ShardCount helpers size the shard layout.
func NewTracer(shards, capacity int) *Tracer { return telemetry.NewTracer(shards, capacity) }

// NewTelemetryRegistry builds an empty metrics registry. Passing it via
// HybridConfig.Registry / IngestOptions.Registry makes every subsystem
// meter land in one snapshot-able, HTTP-exportable place.
func NewTelemetryRegistry() *Registry { return telemetry.NewRegistry() }

// WriteChromeTrace serializes a trace snapshot as Chrome trace_event
// JSON, loadable in chrome://tracing or Perfetto.
func WriteChromeTrace(w io.Writer, s TraceSnapshot) error { return telemetry.WriteChromeTrace(w, s) }

// Attribute decomposes a trace snapshot into the per-phase attribution
// report (observed step phases, background/overlapped work, critical
// path). Render the result against PredictedPhases for the
// observed-vs-predicted table of the telemetry_attribution experiment.
func Attribute(s TraceSnapshot) AttributionReport { return telemetry.Attribute(s) }

// PredictedPhases projects an analytic Breakdown (EstimateGPU,
// EstimateCPUCluster) onto the telemetry phase taxonomy in seconds per
// step — the predicted column of AttributionReport.Render.
func PredictedPhases(bd Breakdown) map[TracePhase]float64 { return perfmodel.PredictedPhases(bd) }

// ServeTelemetry exposes the registry on addr: /metrics (JSON snapshot),
// /healthz, /timeseries (pass WithTimeseries), /debug/vars (expvar),
// and /debug/pprof. It returns the live server (its Addr resolves ":0"
// to the bound port); shut it down when done.
func ServeTelemetry(addr string, r *Registry, opts ...TelemetryServeOption) (*http.Server, error) {
	return telemetry.Serve(addr, r, opts...)
}

// WithTimeseries registers a live /timeseries JSON endpoint on
// ServeTelemetry, backed by the given sample ring (typically
// FlightRecorder.Timeseries()).
func WithTimeseries(ts *Timeseries) TelemetryServeOption { return telemetry.WithTimeseries(ts) }

// NewTimeseries returns a per-step sample ring holding the last
// capacity steps (a ~1k-step window if capacity <= 0). All memory is
// allocated up front; recording never grows it.
func NewTimeseries(capacity int) *Timeseries { return telemetry.NewTimeseries(capacity) }

// OpenFlightRecorder builds the training flight recorder: a per-step
// time-series ring fed by Trainer.SetRecorder or
// HybridConfig.Recorder / ElasticConfig.Recorder, online anomaly
// detectors (EWMA loss z-score, NaN guard, throughput dip, ingest
// starvation, straggler index, step SLO), and — when cfg.Dir is set —
// atomic blackbox-<step>/ bundle dumps on every debounced finding.
func OpenFlightRecorder(cfg FlightRecorderConfig) (*FlightRecorder, error) {
	return telemetry.OpenFlightRecorder(cfg)
}

// RegisterPhaseHists publishes a tracer's per-phase latency histograms
// into a registry, so /metrics and Snapshot.Render carry
// "phase/<name>/{p50,p95,p99,p999}_ns" alongside the counters.
func RegisterPhaseHists(r *Registry, t *Tracer) { telemetry.RegisterPhaseHists(r, t) }

// Imbalance joins a trace snapshot's per-rank step windows with the
// collective rendezvous-wait meters into the straggler report: a
// synchronous straggler waits the least at every barrier, so
// step-wall minus wait recovers each rank's true self time.
func Imbalance(snap TraceSnapshot, ms Snapshot) ImbalanceReport { return telemetry.Imbalance(snap, ms) }

// SkewFromRowCounts summarizes per-row embedding access counts (any
// order) into a TableSkew — feed it trace.Collector row frequencies or
// any raw count slice.
func SkewFromRowCounts(table string, counts []uint64) TableSkew {
	return telemetry.SkewFromRowCounts(table, counts)
}

// Diagnose runs the performance doctor: it decomposes observed step
// time into compute / all-to-all / all-reduce / reader / checkpoint
// buckets (fusing span attribution with the Link-priced collective
// meters), overlays the straggler analysis, and returns a verdict with
// ranked findings. See cmd/dlrmtrain -telemetry.doctor.
func Diagnose(in DoctorInput) DoctorReport { return telemetry.Diagnose(in) }

// CompareBenchReports diffs two BENCH_*.json files (old, new) under the
// tolerance policy; BenchDiff.Regressed reports whether any gated
// benchmark moved past it. DefaultBenchTolerance is the CI policy.
func CompareBenchReports(oldPath, newPath string, tol BenchTolerance) (BenchDiff, error) {
	return benchreport.CompareFiles(oldPath, newPath, tol)
}

// DefaultBenchTolerance is the CI regression-gate policy: >10%
// examples/sec drop fails, zero-alloc contracts are exact.
func DefaultBenchTolerance() BenchTolerance { return benchreport.DefaultTolerance() }

// Experiments lists the regenerable paper artifacts.
func Experiments() []string { return experiments.IDs() }

// RunExperiment regenerates one table or figure.
func RunExperiment(id string, opt ExperimentOptions) (ExperimentResult, error) {
	return experiments.Run(id, opt)
}

// Version identifies the reproduction release.
const Version = "1.9.0"

// Describe returns a one-line summary of a model config.
func Describe(cfg ModelConfig) string {
	return fmt.Sprintf("%s: %d dense, %d sparse, %s embeddings, %.0f lookups/example",
		cfg.Name, cfg.DenseFeatures, cfg.NumSparse(),
		core.HumanBytes(cfg.EmbeddingBytes()), cfg.LookupsPerExample())
}

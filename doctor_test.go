package recsim

import (
	"testing"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/hybrid"
	"repro/internal/ingest"
	"repro/internal/telemetry"
)

// TestDoctorClassifiesRegimes drives the performance doctor through
// three synthetically forced regimes and checks each verdict: a
// dense-heavy run on a perfect wire is compute-bound, the same model on
// a crippled 1 MB/s link is communication-bound (the Link-priced model
// time dominates even though the in-process collectives move at memory
// speed), and a trainer starved by a throttled reader is reader-bound.
func TestDoctorClassifiesRegimes(t *testing.T) {
	t.Run("compute", func(t *testing.T) {
		rep := diagnoseHybrid(t, computeHeavyConfig(), collective.PerfectLink())
		if rep.Verdict != telemetry.VerdictCompute {
			t.Fatalf("verdict %q, want %q\n%s", rep.Verdict, telemetry.VerdictCompute, rep.Render())
		}
	})

	t.Run("comm", func(t *testing.T) {
		slow := collective.Link{Name: "slow-wire", BandwidthBps: 1e6, LatencySec: 100e-6}
		rep := diagnoseHybrid(t, computeHeavyConfig(), slow)
		if rep.Verdict != telemetry.VerdictAllToAll && rep.Verdict != telemetry.VerdictAllReduce {
			t.Fatalf("verdict %q, want all-to-all- or all-reduce-bound\n%s", rep.Verdict, rep.Render())
		}
	})

	t.Run("reader", func(t *testing.T) {
		cfg := core.Config{
			Name:          "doctor-reader",
			DenseFeatures: 8,
			Sparse:        core.UniformSparse(2, 100, 5),
			EmbeddingDim:  8,
			BottomMLP:     []int{16},
			TopMLP:        []int{16},
			Interaction:   core.DotProduct,
		}
		dir := t.TempDir()
		if err := NewGenerator(cfg, 3).WriteShards(dir, 2, 256); err != nil {
			t.Fatal(err)
		}
		ds, err := ingest.OpenDataset(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer ds.Close()
		iOpt := ingest.Options{
			BatchSize: 64, Readers: 1, Seed: 1,
			ReadBandwidth: 200e3, // ~200 KB/s: each shard read stalls the feed
		}
		reg := telemetry.NewRegistry()
		tr := telemetry.NewTracer(1+iOpt.ShardCount(), 4096)
		iOpt.Registry, iOpt.Trace, iOpt.TraceShard = reg, tr, 1
		pipe, err := ingest.Open(ds, cfg, iOpt)
		if err != nil {
			t.Fatal(err)
		}
		defer pipe.Close()
		trn := NewTrainer(NewModel(cfg, 1), TrainerConfig{LR: 0.05})
		trn.SetTrace(tr, 0)
		for i := 0; i < 8; i++ {
			mb, err := pipe.NextBatch()
			if err != nil {
				t.Fatal(err)
			}
			trn.Step(mb)
			pipe.Recycle(mb)
		}
		rep := telemetry.Diagnose(telemetry.DoctorInput{Snap: tr.Snapshot(), Metrics: reg.Snapshot()})
		if rep.Verdict != telemetry.VerdictReader {
			t.Fatalf("verdict %q, want %q\n%s", rep.Verdict, telemetry.VerdictReader, rep.Render())
		}
	})
}

// computeHeavyConfig is small in embeddings but heavy in dense FLOPs, so
// on a fast wire the step is compute-dominated.
func computeHeavyConfig() core.Config {
	return core.Config{
		Name:          "doctor-compute",
		DenseFeatures: 32,
		Sparse:        core.UniformSparse(2, 200, 5),
		EmbeddingDim:  8,
		BottomMLP:     []int{128, 128},
		TopMLP:        []int{128, 64},
		Interaction:   core.DotProduct,
	}
}

// diagnoseHybrid runs a traced 2-rank hybrid trainer on the given link
// for a few steps and returns the doctor's report.
func diagnoseHybrid(t *testing.T, cfg core.Config, link collective.Link) telemetry.DoctorReport {
	t.Helper()
	hc := hybrid.Config{Ranks: 2, LR: 0.05, Seed: 1, Overlap: true, Link: link}
	reg := telemetry.NewRegistry()
	hc.Registry = reg
	hc.Trace = telemetry.NewTracer(hc.ShardCount(), 4096)
	ht, err := hybrid.New(cfg, hc)
	if err != nil {
		t.Fatal(err)
	}
	defer ht.Close()
	batch := NewGenerator(cfg, 2).NextBatch(64)
	for i := 0; i < 10; i++ {
		if _, _, err := ht.Step(batch); err != nil {
			t.Fatal(err)
		}
	}
	return telemetry.Diagnose(telemetry.DoctorInput{Snap: hc.Trace.Snapshot(), Metrics: reg.Snapshot()})
}
